// Package service exposes PrIU as an HTTP deletion service: a data-cleaning
// pipeline (the integration point the paper's introduction describes) trains
// and registers models, then issues deletion requests and receives updated
// parameters without retraining. Sessions hold the captured provenance; the
// API is deliberately small: register → delete → fetch model.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
	"repro/internal/metrics"
)

// updater abstracts the per-family PrIU state a session holds.
type updater interface {
	Update(removed []int) (*gbm.Model, error)
	FootprintBytes() int64
}

// Session is one registered model with its captured provenance.
type Session struct {
	ID        string
	Kind      string // "linear" | "logistic" | "multinomial"
	CreatedAt time.Time

	mu      sync.Mutex
	data    *dataset.Dataset
	cfg     gbm.Config
	upd     updater
	model   *gbm.Model // current model (after the latest deletion)
	deleted []int      // cumulative deletion log
}

// Server is the HTTP deletion service. The zero value is not usable; call
// NewServer.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
}

// NewServer returns an empty deletion service.
func NewServer() *Server {
	return &Server{sessions: make(map[string]*Session)}
}

// TrainRequest registers a training job. Features is row-major n×m.
type TrainRequest struct {
	Kind       string      `json:"kind"` // linear | logistic | multinomial
	Features   [][]float64 `json:"features"`
	Labels     []float64   `json:"labels"`
	Classes    int         `json:"classes,omitempty"`
	Eta        float64     `json:"eta"`
	Lambda     float64     `json:"lambda"`
	BatchSize  int         `json:"batch_size"`
	Iterations int         `json:"iterations"`
	Seed       int64       `json:"seed"`
}

// TrainResponse reports the new session.
type TrainResponse struct {
	SessionID      string    `json:"session_id"`
	Parameters     []float64 `json:"parameters"`
	ProvenanceMB   float64   `json:"provenance_mb"`
	CaptureSeconds float64   `json:"capture_seconds"`
}

// DeleteRequest removes training samples from a session's model.
type DeleteRequest struct {
	SessionID string `json:"session_id"`
	Removed   []int  `json:"removed"`
}

// DeleteResponse reports the incrementally updated model.
type DeleteResponse struct {
	SessionID     string    `json:"session_id"`
	Parameters    []float64 `json:"parameters"`
	UpdateSeconds float64   `json:"update_seconds"`
	TotalDeleted  int       `json:"total_deleted"`
	CosineVsPrev  float64   `json:"cosine_vs_previous"`
}

// ModelResponse reports a session's current model.
type ModelResponse struct {
	SessionID    string    `json:"session_id"`
	Kind         string    `json:"kind"`
	Parameters   []float64 `json:"parameters"`
	TotalDeleted int       `json:"total_deleted"`
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/train", s.handleTrain)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/model/", s.handleModel)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	return mux
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	d, err := datasetFromRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := gbm.Config{
		Eta: req.Eta, Lambda: req.Lambda,
		BatchSize: req.BatchSize, Iterations: req.Iterations, Seed: req.Seed,
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	var upd updater
	var model *gbm.Model
	switch req.Kind {
	case "linear":
		lp, err := core.CaptureLinear(d, cfg, sched, core.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		upd, model = lp, lp.Model()
	case "logistic":
		lp, err := core.CaptureLogistic(d, cfg, sched, nil, core.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		upd, model = lp, lp.Model()
	case "multinomial":
		mp, err := core.CaptureMultinomial(d, cfg, sched, core.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		upd, model = mp, mp.Model()
	default:
		writeError(w, http.StatusBadRequest, "unknown kind %q", req.Kind)
		return
	}
	sess := &Session{
		Kind:      req.Kind,
		CreatedAt: time.Now(),
		data:      d,
		cfg:       cfg,
		upd:       upd,
		model:     model,
	}
	s.mu.Lock()
	s.nextID++
	sess.ID = fmt.Sprintf("sess-%d", s.nextID)
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	writeJSON(w, TrainResponse{
		SessionID:      sess.ID,
		Parameters:     model.Vec(),
		ProvenanceMB:   float64(upd.FootprintBytes()) / (1 << 20),
		CaptureSeconds: time.Since(start).Seconds(),
	})
}

func datasetFromRequest(req *TrainRequest) (*dataset.Dataset, error) {
	n := len(req.Features)
	if n == 0 {
		return nil, fmt.Errorf("empty feature matrix")
	}
	m := len(req.Features[0])
	if m == 0 {
		return nil, fmt.Errorf("zero-width feature matrix")
	}
	if len(req.Labels) != n {
		return nil, fmt.Errorf("%d labels for %d rows", len(req.Labels), n)
	}
	x := make([]float64, 0, n*m)
	for i, row := range req.Features {
		if len(row) != m {
			return nil, fmt.Errorf("row %d has %d features, want %d", i, len(row), m)
		}
		x = append(x, row...)
	}
	var task dataset.Task
	classes := 0
	switch req.Kind {
	case "linear":
		task = dataset.Regression
	case "logistic":
		task = dataset.BinaryClassification
		classes = 2
	case "multinomial":
		task = dataset.MultiClassification
		classes = req.Classes
	default:
		return nil, fmt.Errorf("unknown kind %q", req.Kind)
	}
	d := &dataset.Dataset{
		Name:    "api",
		Task:    task,
		Classes: classes,
		X:       denseFromFlat(n, m, x),
		Y:       req.Labels,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func denseFromFlat(n, m int, data []float64) *mat.Dense {
	return mat.NewDenseData(n, m, data)
}

func (s *Server) session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	sess, ok := s.session(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", req.SessionID)
		return
	}
	if len(req.Removed) == 0 {
		writeError(w, http.StatusBadRequest, "empty removal set")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// Deletions are cumulative within a session.
	all := append(append([]int(nil), sess.deleted...), req.Removed...)
	start := time.Now()
	updated, err := sess.upd.Update(all)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dt := time.Since(start)
	cmp, err := metrics.Compare(updated, sess.model)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sess.deleted = all
	sess.model = updated
	writeJSON(w, DeleteResponse{
		SessionID:     sess.ID,
		Parameters:    updated.Vec(),
		UpdateSeconds: dt.Seconds(),
		TotalDeleted:  len(all),
		CosineVsPrev:  cmp.Cosine,
	})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/model/")
	sess, ok := s.session(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	writeJSON(w, ModelResponse{
		SessionID:    sess.ID,
		Kind:         sess.Kind,
		Parameters:   sess.model.Vec(),
		TotalDeleted: len(sess.deleted),
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	type row struct {
		ID        string    `json:"id"`
		Kind      string    `json:"kind"`
		CreatedAt time.Time `json:"created_at"`
	}
	out := make([]row, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, row{ID: sess.ID, Kind: sess.Kind, CreatedAt: sess.CreatedAt})
	}
	writeJSON(w, out)
}
