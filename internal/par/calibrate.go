package par

import (
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Measured grain cutoffs. The static MinWork constant was tuned for one
// machine shape; real per-chunk costs (flop throughput, memory bandwidth,
// pool wakeup latency) vary enough across hosts that a fixed number either
// over-splits fast machines or under-splits slow ones. Calibrate times two
// small probe kernels plus the pool dispatch path at startup and derives the
// cutoffs from the measurements; the env variable PRIU_PAR_MINWORK pins both
// cutoffs to a fixed value for reproducible CI runs.
//
// The cutoffs only steer chunking — every kernel in this repository is
// bitwise-deterministic regardless of how its loops are split (disjoint
// outputs, or MapReduceDet's fixed reduction tree) — so calibration can never
// change results, only speed.
var (
	// cutoffCompute is the per-chunk flop cutoff consumed by Grain.
	cutoffCompute atomic.Int64
	// cutoffMem is the per-chunk streamed-element cutoff consumed by GrainMem.
	cutoffMem atomic.Int64
	// cutoffsPinned is set when PRIU_PAR_MINWORK or SetCutoffs pinned the
	// cutoffs explicitly; Calibrate then measures but does not apply.
	cutoffsPinned atomic.Bool
)

// EnvMinWork is the environment variable that pins both grain cutoffs to a
// fixed value (reproducible CI): PRIU_PAR_MINWORK=32768.
const EnvMinWork = "PRIU_PAR_MINWORK"

func init() {
	cutoffCompute.Store(MinWork)
	cutoffMem.Store(MinWork)
	if s := os.Getenv(EnvMinWork); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			cutoffCompute.Store(int64(v))
			cutoffMem.Store(int64(v))
			cutoffsPinned.Store(true)
		}
	}
}

// Cutoffs returns the effective (compute, memory) per-chunk work cutoffs.
func Cutoffs() (compute, mem int) {
	return int(cutoffCompute.Load()), int(cutoffMem.Load())
}

// SetCutoffs pins the per-chunk work cutoffs explicitly (a -par-minwork style
// flag); subsequent Calibrate calls measure but do not override. n <= 0
// leaves the corresponding cutoff unchanged.
func SetCutoffs(compute, mem int) {
	if compute > 0 {
		cutoffCompute.Store(int64(compute))
	}
	if mem > 0 {
		cutoffMem.Store(int64(mem))
	}
	cutoffsPinned.Store(true)
}

// Calibration reports what Calibrate measured and decided.
type Calibration struct {
	// NsPerFlop is the measured scalar cost of one multiply-add lane.
	NsPerFlop float64
	// NsPerElem is the measured streaming cost of one read-modify-write
	// element (axpy shape).
	NsPerElem float64
	// DispatchNs is the measured round-trip cost of scheduling one chunk on
	// the pool (claim + wakeup, amortized).
	DispatchNs float64
	// Compute and Mem are the derived per-chunk cutoffs.
	Compute, Mem int
	// Pinned reports that an explicit override (PRIU_PAR_MINWORK or
	// SetCutoffs) was active, so the derived values were NOT applied.
	Pinned bool
}

const (
	calProbeLen = 4096
	// calMinChunkNs is the floor on target per-chunk duration: a chunk must
	// carry enough work to bury several pool dispatches.
	calMinChunkNs = 20_000
	// calDispatchMult sizes chunks as a multiple of the measured dispatch
	// cost so scheduling overhead stays a few percent.
	calDispatchMult = 32
	calMinCutoff    = 1 << 13
	calMaxCutoff    = 1 << 21
)

// Calibrate measures this host's flop throughput, streaming bandwidth and
// pool dispatch latency with ~1ms of probes and derives the per-chunk grain
// cutoffs used by Grain and GrainMem. It is intended to be called once at
// process startup (the cmds do); it is safe to call again. When an explicit
// override is active the measurements are still taken and reported, but the
// cutoffs are left pinned.
func Calibrate() Calibration {
	a := make([]float64, calProbeLen)
	b := make([]float64, calProbeLen)
	for i := range a {
		a[i] = 1.0 + float64(i%7)*1e-3
		b[i] = 1.0 - float64(i%5)*1e-3
	}

	nsPerFlop := minOver(3, func() float64 {
		const reps = 64
		var s0, s1 float64
		start := time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < calProbeLen; i += 2 {
				s0 += a[i] * b[i]
				s1 += a[i+1] * b[i+1]
			}
		}
		el := time.Since(start)
		calSink = s0 + s1
		return float64(el.Nanoseconds()) / float64(2*reps*calProbeLen)
	})

	nsPerElem := minOver(3, func() float64 {
		const reps = 64
		start := time.Now()
		for r := 0; r < reps; r++ {
			f := 1e-9 * float64(r+1)
			for i := range a {
				a[i] += f * b[i]
			}
		}
		el := time.Since(start)
		calSink = a[0]
		return float64(el.Nanoseconds()) / float64(reps*calProbeLen)
	})

	// Dispatch probe: schedule many trivial chunks through For with the pool
	// engaged and charge the wall time to the chunk count. On a saturated or
	// single-core host this degrades toward the cost of a function call,
	// which only makes the derived cutoffs smaller — the calMinChunkNs floor
	// keeps that honest.
	dispatchNs := 0.0
	if Workers() > 1 {
		dispatchNs = minOver(3, func() float64 {
			const chunks = 256
			start := time.Now()
			For(chunks, 1, func(lo, hi int) {})
			return float64(time.Since(start).Nanoseconds()) / chunks
		})
	}

	target := calDispatchMult * dispatchNs
	if target < calMinChunkNs {
		target = calMinChunkNs
	}
	cal := Calibration{
		NsPerFlop:  nsPerFlop,
		NsPerElem:  nsPerElem,
		DispatchNs: dispatchNs,
		Compute:    clampCutoff(target / nsPerFlop),
		Mem:        clampCutoff(target / nsPerElem),
		Pinned:     cutoffsPinned.Load(),
	}
	if !cal.Pinned {
		cutoffCompute.Store(int64(cal.Compute))
		cutoffMem.Store(int64(cal.Mem))
	}
	return cal
}

// calSink defeats dead-code elimination of the probe loops.
var calSink float64

func minOver(reps int, f func() float64) float64 {
	best := f()
	for i := 1; i < reps; i++ {
		if v := f(); v < best {
			best = v
		}
	}
	return best
}

func clampCutoff(v float64) int {
	if v != v || v < calMinCutoff { // NaN or tiny
		return calMinCutoff
	}
	if v > calMaxCutoff {
		return calMaxCutoff
	}
	return int(v)
}
