package par

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMapReduceDetSum checks the deterministic reduction computes the right
// value across sizes straddling the chunk cap.
func TestMapReduceDetSum(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000, 100000} {
		got := MapReduceDet(n, 8,
			func() int { return 0 },
			func(acc, lo, hi int) int {
				for i := lo; i < hi; i++ {
					acc += i
				}
				return acc
			},
			func(a, b int) int { return a + b })
		want := n * (n - 1) / 2
		if got != want {
			t.Errorf("MapReduceDet sum n=%d = %d, want %d", n, got, want)
		}
	}
}

// TestMapReduceDetBitwiseAcrossWorkers is the core contract: a float fold
// whose result depends on summation order must come out bitwise-identical at
// any worker count, because the chunk plan and merge order are fixed by
// (n, grain) alone.
func TestMapReduceDetBitwiseAcrossWorkers(t *testing.T) {
	xs := make([]float64, 9973)
	v := 1.0
	for i := range xs {
		v = v*1.0000001 + 1e-7
		xs[i] = v * 1e-3
	}
	run := func() float64 {
		return MapReduceDet(len(xs), 100,
			func() float64 { return 0 },
			func(acc float64, lo, hi int) float64 {
				for i := lo; i < hi; i++ {
					acc += xs[i]
				}
				return acc
			},
			func(a, b float64) float64 { return a + b })
	}
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	base := run()
	for _, w := range []int{2, 3, 8, 16} {
		SetWorkers(w)
		for rep := 0; rep < 10; rep++ {
			if got := run(); got != base {
				t.Fatalf("workers=%d rep=%d: %x differs from workers=1 result %x", w, rep, got, base)
			}
		}
	}
}

func TestDetPlanIndependentOfWorkers(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	c1, n1 := detPlan(100000, 64)
	SetWorkers(16)
	c2, n2 := detPlan(100000, 64)
	if c1 != c2 || n1 != n2 {
		t.Fatalf("detPlan changed with worker count: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
	if n1 > detMaxChunks {
		t.Fatalf("detPlan produced %d chunks, cap is %d", n1, detMaxChunks)
	}
	// Chunks must cover [0, n) exactly.
	if c1*n1 < 100000 || c1*(n1-1) >= 100000 {
		t.Fatalf("detPlan chunk=%d chunks=%d does not cover n=100000 tightly", c1, n1)
	}
}

// TestCalibrateMeasuresAndRespectsPins checks the probe results are sane and
// that explicit pins survive a Calibrate call.
func TestCalibrateMeasuresAndRespectsPins(t *testing.T) {
	c0, m0 := Cutoffs()
	defer SetCutoffs(c0, m0)
	cal := Calibrate()
	if !(cal.NsPerFlop > 0) || !(cal.NsPerElem > 0) {
		t.Fatalf("probe timings not positive: %+v", cal)
	}
	if cal.Compute < calMinCutoff || cal.Compute > calMaxCutoff ||
		cal.Mem < calMinCutoff || cal.Mem > calMaxCutoff {
		t.Fatalf("derived cutoffs out of clamp range: %+v", cal)
	}
	if !cal.Pinned {
		if c, m := Cutoffs(); c != cal.Compute || m != cal.Mem {
			t.Fatalf("unpinned Calibrate did not apply: Cutoffs()=(%d,%d), cal=%+v", c, m, cal)
		}
	}

	SetCutoffs(12345, 54321)
	cal = Calibrate()
	if !cal.Pinned {
		t.Fatal("Calibrate after SetCutoffs should report Pinned")
	}
	if c, m := Cutoffs(); c != 12345 || m != 54321 {
		t.Fatalf("Calibrate overrode pinned cutoffs: got (%d,%d)", c, m)
	}
}

// TestEnvMinWorkPin runs a child process with PRIU_PAR_MINWORK set and checks
// both cutoffs come up pinned to it.
func TestEnvMinWorkPin(t *testing.T) {
	if os.Getenv("PAR_TEST_CHILD") == "1" {
		c, m := Cutoffs()
		if c != 777 || m != 777 {
			t.Fatalf("env pin not applied: (%d,%d)", c, m)
		}
		cal := Calibrate()
		if !cal.Pinned {
			t.Fatal("env pin not reported by Calibrate")
		}
		return
	}
	if testing.Short() {
		t.Skip("short mode: skipping subprocess test")
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestEnvMinWorkPin$", "-test.v")
	cmd.Env = append(os.Environ(), "PAR_TEST_CHILD=1", EnvMinWork+"=777")
	out, err := cmd.CombinedOutput()
	if err != nil || !strings.Contains(string(out), "PASS") {
		t.Fatalf("child failed: %v\n%s", err, out)
	}
}
