// Package par provides the reusable parallelism substrate for the PrIU
// reproduction: a lazily started pool of worker goroutines and two chunked
// scheduling primitives, For (independent index ranges) and MapReduce
// (per-worker accumulators merged at the end). The dense and sparse kernels
// route their row loops through this package, so one knob — SetWorkers —
// controls the parallelism of the whole stack.
//
// Design points:
//
//   - Work is split into contiguous chunks of at least `grain` items; chunks
//     are claimed from an atomic counter, so uneven per-item cost (e.g. CSR
//     rows with skewed NNZ) load-balances automatically.
//   - Below the grain cutoff, or when Workers() == 1, calls run serially on
//     the caller's goroutine with zero scheduling overhead; kernels stay
//     deterministic and allocation-free for small operands.
//   - The submitting goroutine always participates in the work. Helper
//     workers are requested from the shared pool with a non-blocking send:
//     if the pool is saturated (e.g. a kernel invoked from inside another
//     parallel region), the caller simply does the work itself. Nested use
//     therefore degrades to serial execution instead of deadlocking.
//   - A panic in any chunk aborts the remaining chunks and is re-raised on
//     the submitting goroutine after all helpers have drained.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is a reasonable minimum number of scalar work items per chunk
// for memory-bound vector loops. Compute-bound kernels derive their own grain
// from a flop estimate via Grain.
const DefaultGrain = 4096

// MinWork is the static default for the per-chunk work cutoff (flops or
// memory touches) below which splitting is not worth the scheduling and
// wakeup overhead (~a few microseconds per chunk). The effective cutoffs are
// variables — see Calibrate, SetCutoffs and the PRIU_PAR_MINWORK override.
const MinWork = 1 << 15

// Grain converts a per-item flop estimate into a chunk grain: every chunk
// carries at least the compute-bound work cutoff worth of arithmetic.
func Grain(perItem int) int {
	if perItem < 1 {
		perItem = 1
	}
	g := int(cutoffCompute.Load()) / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// GrainMem is Grain for memory-bound loops (per-item cost counted in elements
// streamed rather than flops): every chunk touches at least the memory-bound
// cutoff worth of elements.
func GrainMem(perItem int) int {
	if perItem < 1 {
		perItem = 1
	}
	g := int(cutoffMem.Load()) / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// chunksPerWorker bounds how many chunks each worker claims on average;
// more chunks than this only adds counter contention.
const chunksPerWorker = 4

// Pool telemetry: dispatches counts helper closures handed to the pool,
// inline counts helper shares absorbed by the caller because the pool was
// saturated. Both are per-helper (not per-item), so the increment cost is
// negligible next to the channel send it annotates. A rising inline share is
// the queue-wait signal: parallel regions are contending for helpers.
var (
	statDispatches atomic.Int64
	statInline     atomic.Int64
)

// PoolStats is a snapshot of the helper-pool telemetry counters.
type PoolStats struct {
	Dispatches int64 // helper closures accepted by the pool
	Inline     int64 // helper shares run inline (pool saturated)
}

// Stats returns cumulative helper-pool telemetry.
func Stats() PoolStats {
	return PoolStats{Dispatches: statDispatches.Load(), Inline: statInline.Load()}
}

var workers atomic.Int64

func init() { workers.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers returns the current target parallelism (including the caller's
// goroutine).
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the target parallelism for subsequent For/MapReduce calls.
// n <= 0 resets to runtime.GOMAXPROCS(0). It returns the previous value so
// callers (benchmarks, tests) can restore it.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workers.Swap(int64(n)))
}

// The helper pool: long-lived goroutines fed closures over an unbuffered
// channel. Pool size is fixed at startup; on single-core hosts a few helpers
// are still kept so tests can exercise real interleavings.
var (
	poolOnce sync.Once
	poolCh   chan func()
)

func pool() chan func() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 4 {
			n = 4
		}
		poolCh = make(chan func())
		for i := 0; i < n; i++ {
			go func() {
				for f := range poolCh {
					f()
				}
			}()
		}
	})
	return poolCh
}

// plan computes the chunk size and count for n items with the requested
// minimum grain, capping the chunk count at w*chunksPerWorker.
func plan(n, grain, w int) (chunk, chunks int) {
	if grain < 1 {
		grain = 1
	}
	chunks = (n + grain - 1) / grain
	if max := w * chunksPerWorker; chunks > max {
		chunks = max
	}
	chunk = (n + chunks - 1) / chunks
	chunks = (n + chunk - 1) / chunk
	return chunk, chunks
}

// For runs fn(lo, hi) over disjoint subranges covering [0, n). grain is the
// minimum number of items per chunk; n <= grain (or Workers() == 1) runs
// fn(0, n) serially on the caller's goroutine. fn must be safe to call
// concurrently from multiple goroutines on disjoint ranges.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunk, chunks := plan(n, grain, w)
	if chunks <= 1 {
		fn(0, n)
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Pointer[any]
	)
	runner := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &r)
				next.Store(int64(chunks)) // abort remaining chunks
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	helpers := w - 1
	if chunks-1 < helpers {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
	p := pool()
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		select {
		case p <- func() { defer wg.Done(); runner() }:
			statDispatches.Add(1)
		default:
			// Pool saturated (nested parallel region or heavy load): the
			// caller absorbs this helper's share.
			statInline.Add(1)
			wg.Done()
		}
	}
	runner()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
}

// MapReduce runs chunk over disjoint subranges covering [0, n), giving each
// participating worker its own accumulator from newAcc, and folds the
// per-worker accumulators with merge. chunk receives the worker's current
// accumulator and returns the (possibly same, possibly replaced) accumulator.
// merge may mutate and return its first argument. For n <= grain or a single
// worker the call reduces to chunk(newAcc(), 0, n) with no merge.
func MapReduce[T any](n, grain int, newAcc func() T, chunk func(acc T, lo, hi int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return newAcc()
	}
	w := Workers()
	if w <= 1 || n <= grain {
		return chunk(newAcc(), 0, n)
	}
	sz, chunks := plan(n, grain, w)
	if chunks <= 1 {
		return chunk(newAcc(), 0, n)
	}
	var (
		next     atomic.Int64
		panicked atomic.Pointer[any]
		mu       sync.Mutex
		accs     []T
	)
	runner := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &r)
				next.Store(int64(chunks))
			}
		}()
		var acc T
		started := false
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				break
			}
			if !started {
				acc = newAcc()
				started = true
			}
			lo := c * sz
			hi := lo + sz
			if hi > n {
				hi = n
			}
			acc = chunk(acc, lo, hi)
		}
		if started {
			mu.Lock()
			accs = append(accs, acc)
			mu.Unlock()
		}
	}
	helpers := w - 1
	if chunks-1 < helpers {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
	p := pool()
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		select {
		case p <- func() { defer wg.Done(); runner() }:
			statDispatches.Add(1)
		default:
			statInline.Add(1)
			wg.Done()
		}
	}
	runner()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
	out := accs[0]
	for _, a := range accs[1:] {
		out = merge(out, a)
	}
	return out
}

// detMaxChunks bounds how many fixed chunks (and therefore live accumulators)
// a deterministic reduction creates, independent of the worker count.
const detMaxChunks = 32

// detPlan computes the chunk size and count for a deterministic reduction:
// the plan depends only on n and grain, never on Workers(), so the reduction
// tree is identical at any pool size.
func detPlan(n, grain int) (chunk, chunks int) {
	if grain < 1 {
		grain = 1
	}
	chunks = (n + grain - 1) / grain
	if chunks > detMaxChunks {
		chunks = detMaxChunks
	}
	chunk = (n + chunks - 1) / chunks
	chunks = (n + chunk - 1) / chunk
	return chunk, chunks
}

// MapReduceDet is MapReduce with a bitwise-deterministic reduction order:
// chunk boundaries are fixed by (n, grain) alone and the per-chunk
// accumulators are folded left-to-right in chunk-index order, so the result
// is identical at any worker count — including Workers() == 1, where the same
// chunked fold runs serially. Kernels whose output feeds persisted snapshots
// (the PR 3 bitwise contract) use this instead of MapReduce, whose merge
// order depends on chunk completion order.
//
// The cost of determinism is bounded extra merging: at most detMaxChunks
// accumulators exist regardless of pool size.
func MapReduceDet[T any](n, grain int, newAcc func() T, chunk func(acc T, lo, hi int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return newAcc()
	}
	sz, chunks := detPlan(n, grain)
	if chunks <= 1 {
		return chunk(newAcc(), 0, n)
	}
	accs := make([]T, chunks)
	For(chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			clo := c * sz
			chi := clo + sz
			if chi > n {
				chi = n
			}
			accs[c] = chunk(newAcc(), clo, chi)
		}
	})
	out := accs[0]
	for _, a := range accs[1:] {
		out = merge(out, a)
	}
	return out
}
