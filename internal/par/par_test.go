package par

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the pool temporarily forced to n workers.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestForEmptyAndNegative(t *testing.T) {
	withWorkers(t, 4, func() {
		called := false
		For(0, 1, func(lo, hi int) { called = true })
		For(-5, 1, func(lo, hi int) { called = true })
		if called {
			t.Fatal("fn called for empty range")
		}
	})
}

func TestForBelowCutoffRunsSerial(t *testing.T) {
	withWorkers(t, 4, func() {
		var calls int32
		For(10, 100, func(lo, hi int) {
			atomic.AddInt32(&calls, 1)
			if lo != 0 || hi != 10 {
				t.Errorf("serial fallback got [%d,%d), want [0,10)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("calls = %d, want 1 (single serial chunk)", calls)
		}
	})
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		withWorkers(t, w, func() {
			const n = 100001
			counts := make([]int32, n)
			For(n, 64, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
				}
			}
		})
	}
}

func TestForPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			if r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		For(10000, 1, func(lo, hi int) {
			if lo >= 5000 {
				panic("boom")
			}
		})
	})
}

func TestForPanicOnSerialPath(t *testing.T) {
	withWorkers(t, 1, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("serial panic did not propagate")
			}
		}()
		For(10, 100, func(lo, hi int) { panic("serial boom") })
	})
}

func TestForNested(t *testing.T) {
	withWorkers(t, 4, func() {
		const outer, inner = 64, 257
		var total atomic.Int64
		For(outer, 1, func(olo, ohi int) {
			for o := olo; o < ohi; o++ {
				For(inner, 16, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}
		})
		if got := total.Load(); got != outer*inner {
			t.Fatalf("nested total = %d, want %d", got, outer*inner)
		}
	})
}

func TestMapReduceSum(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			const n = 123457
			got := MapReduce(n, 100,
				func() int64 { return 0 },
				func(acc int64, lo, hi int) int64 {
					for i := lo; i < hi; i++ {
						acc += int64(i)
					}
					return acc
				},
				func(a, b int64) int64 { return a + b })
			want := int64(n) * int64(n-1) / 2
			if got != want {
				t.Fatalf("workers=%d: sum = %d, want %d", w, got, want)
			}
		})
	}
}

func TestMapReduceEmpty(t *testing.T) {
	withWorkers(t, 4, func() {
		got := MapReduce(0, 1,
			func() int { return 42 },
			func(acc, lo, hi int) int { t.Fatal("chunk called"); return acc },
			func(a, b int) int { return a + b })
		if got != 42 {
			t.Fatalf("empty MapReduce = %d, want identity 42", got)
		}
	})
}

func TestMapReducePanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		MapReduce(10000, 1,
			func() int { return 0 },
			func(acc, lo, hi int) int { panic("mr boom") },
			func(a, b int) int { return a + b })
	})
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if back := SetWorkers(0); back != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", back)
	}
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset, want >= 1", Workers())
	}
	SetWorkers(prev)
}
