package metrics

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

func modelOf(task dataset.Task, rows, cols int, vals []float64) *gbm.Model {
	return &gbm.Model{Task: task, W: mat.NewDenseData(rows, cols, vals)}
}

func TestMSE(t *testing.T) {
	d := &dataset.Dataset{
		Name: "m", Task: dataset.Regression,
		X: mat.NewDenseData(2, 2, []float64{1, 0, 0, 1}),
		Y: []float64{2, 0},
	}
	model := modelOf(dataset.Regression, 1, 2, []float64{1, 1})
	got, err := MSE(model, d)
	if err != nil {
		t.Fatal(err)
	}
	// predictions 1,1 vs labels 2,0 → errors 1,1 → MSE 1.
	if got != 1 {
		t.Fatalf("MSE = %v", got)
	}
	bin := &dataset.Dataset{Name: "b", Task: dataset.BinaryClassification,
		X: mat.NewDense(1, 2), Y: []float64{1}}
	if _, err := MSE(model, bin); err == nil {
		t.Fatal("expected task error")
	}
}

func TestAccuracyBinary(t *testing.T) {
	d := &dataset.Dataset{
		Name: "a", Task: dataset.BinaryClassification, Classes: 2,
		X: mat.NewDenseData(4, 1, []float64{1, 2, -1, -3}),
		Y: []float64{1, 1, -1, 1},
	}
	model := modelOf(dataset.BinaryClassification, 1, 1, []float64{1})
	got, err := Accuracy(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Fatalf("Accuracy = %v", got)
	}
	reg := &dataset.Dataset{Name: "r", Task: dataset.Regression, X: mat.NewDense(1, 1), Y: []float64{0}}
	if _, err := Accuracy(model, reg); err == nil {
		t.Fatal("expected task error")
	}
}

func TestAccuracyMulticlass(t *testing.T) {
	d := &dataset.Dataset{
		Name: "mc", Task: dataset.MultiClassification, Classes: 2,
		X: mat.NewDenseData(2, 2, []float64{1, 0, 0, 1}),
		Y: []float64{0, 1},
	}
	// Class 0 weights favor feature 0; class 1 favors feature 1 → perfect.
	model := modelOf(dataset.MultiClassification, 2, 2, []float64{1, 0, 0, 1})
	got, err := Accuracy(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestAccuracySparse(t *testing.T) {
	sd, err := dataset.GenerateSparseBinary("s", 30, 50, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	model := modelOf(dataset.BinaryClassification, 1, 50, make([]float64, 50))
	acc, err := AccuracySparse(model, sd)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("AccuracySparse = %v", acc)
	}
}

func TestCompare(t *testing.T) {
	a := modelOf(dataset.Regression, 1, 3, []float64{1, -2, 3})
	b := modelOf(dataset.Regression, 1, 3, []float64{1, 2, 3})
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.SignFlips != 1 {
		t.Fatalf("SignFlips = %d", c.SignFlips)
	}
	if math.Abs(c.L2Distance-4) > 1e-12 {
		t.Fatalf("L2Distance = %v", c.L2Distance)
	}
	if c.Coordinates != 3 {
		t.Fatalf("Coordinates = %d", c.Coordinates)
	}
	if c.MaxRelMagnitudeChange < 1.9 {
		t.Fatalf("MaxRelMagnitudeChange = %v", c.MaxRelMagnitudeChange)
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
	// Identical models: perfect similarity.
	c2, err := Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if c2.L2Distance != 0 || math.Abs(c2.Cosine-1) > 1e-12 || c2.SignFlips != 0 {
		t.Fatalf("self comparison = %+v", c2)
	}
	// Size mismatch.
	short := modelOf(dataset.Regression, 1, 2, []float64{1, 2})
	if _, err := Compare(a, short); err == nil {
		t.Fatal("expected size error")
	}
}
