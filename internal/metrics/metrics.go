// Package metrics implements the evaluation measures of the paper's Sec 6.2:
// MSE for regression, validation accuracy for classification, and the model
// comparison measures — L2 distance, cosine similarity, per-coordinate sign
// flips and magnitude changes.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// MSE returns the mean squared error of a linear model on a dataset.
func MSE(model *gbm.Model, d *dataset.Dataset) (float64, error) {
	if d.Task != dataset.Regression {
		return 0, fmt.Errorf("metrics: MSE requires regression data, got %v", d.Task)
	}
	preds := model.PredictLinear(d.X)
	var s float64
	for i, p := range preds {
		r := p - d.Y[i]
		s += r * r
	}
	return s / float64(len(preds)), nil
}

// Accuracy returns the validation accuracy of a classifier on a dataset
// (binary or multiclass, by the model's task).
func Accuracy(model *gbm.Model, d *dataset.Dataset) (float64, error) {
	var preds []float64
	switch d.Task {
	case dataset.BinaryClassification:
		preds = model.PredictBinary(d.X)
	case dataset.MultiClassification:
		preds = model.PredictMulticlass(d.X)
	default:
		return 0, fmt.Errorf("metrics: Accuracy requires classification data, got %v", d.Task)
	}
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// AccuracySparse is Accuracy for a sparse binary dataset.
func AccuracySparse(model *gbm.Model, d *dataset.SparseDataset) (float64, error) {
	if d.Task != dataset.BinaryClassification {
		return 0, fmt.Errorf("metrics: AccuracySparse requires binary data, got %v", d.Task)
	}
	preds := model.PredictBinarySparse(d)
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// Comparison summarizes how close two parameter vectors are — the paper's
// "distance" (L2) and "similarity" (cosine) columns of Table 4 plus the
// finer-grained sign-flip and magnitude analysis of Q4.
type Comparison struct {
	// L2Distance is ‖a − b‖₂.
	L2Distance float64
	// Cosine is the cosine of the angle between a and b.
	Cosine float64
	// SignFlips counts coordinates whose sign differs (zeros never flip).
	SignFlips int
	// MaxRelMagnitudeChange is max over coordinates of |aᵢ−bᵢ|/(|bᵢ|+eps).
	MaxRelMagnitudeChange float64
	// Coordinates is the vector length.
	Coordinates int
}

// Compare computes the Comparison of the candidate model a against the
// reference model b (typically BaseL).
func Compare(a, b *gbm.Model) (Comparison, error) {
	av, bv := a.Vec(), b.Vec()
	if len(av) != len(bv) {
		return Comparison{}, fmt.Errorf("metrics: model sizes differ: %d vs %d", len(av), len(bv))
	}
	const eps = 1e-12
	c := Comparison{
		L2Distance:  mat.Distance(av, bv),
		Cosine:      mat.CosineSimilarity(av, bv),
		Coordinates: len(av),
	}
	for i := range av {
		if av[i]*bv[i] < 0 {
			c.SignFlips++
		}
		rel := math.Abs(av[i]-bv[i]) / (math.Abs(bv[i]) + eps)
		if rel > c.MaxRelMagnitudeChange {
			c.MaxRelMagnitudeChange = rel
		}
	}
	return c, nil
}

// String renders the comparison in the paper's Table 4 style.
func (c Comparison) String() string {
	return fmt.Sprintf("dist=%.4g cos=%.4f flips=%d/%d maxΔ=%.3g",
		c.L2Distance, c.Cosine, c.SignFlips, c.Coordinates, c.MaxRelMagnitudeChange)
}
