package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testLinearizer uses a coarser grid than the paper's 10⁶ cells so tests
// stay fast while still exercising the error bounds.
func testLinearizer(t *testing.T, cells int) *Linearizer {
	t.Helper()
	l, err := NewLinearizer(F, DefaultBound, cells)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSigmoidValues(t *testing.T) {
	if math.Abs(Sigmoid(0)-0.5) > 1e-15 {
		t.Fatalf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if Sigmoid(100) < 1-1e-12 {
		t.Fatalf("Sigmoid(100) = %v", Sigmoid(100))
	}
	if Sigmoid(-100) > 1e-12 {
		t.Fatalf("Sigmoid(-100) = %v", Sigmoid(-100))
	}
	// Symmetry σ(x) + σ(−x) = 1.
	for _, x := range []float64{-5, -1, 0.3, 2, 7} {
		if math.Abs(Sigmoid(x)+Sigmoid(-x)-1) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %v", x)
		}
	}
}

func TestFAndFPrime(t *testing.T) {
	// f(x) = 1 − 1/(1+e^{−x}); check against the direct formula.
	for _, x := range []float64{-10, -1, 0, 0.5, 3, 15} {
		want := 1 - 1/(1+math.Exp(-x))
		if math.Abs(F(x)-want) > 1e-12 {
			t.Fatalf("F(%v) = %v, want %v", x, F(x), want)
		}
	}
	// f′ < 0 everywhere (f monotonically decreasing).
	for _, x := range []float64{-8, 0, 8} {
		if FPrime(x) >= 0 {
			t.Fatalf("FPrime(%v) = %v, want negative", x, FPrime(x))
		}
	}
	// Numeric derivative check.
	const h = 1e-6
	for _, x := range []float64{-2, 0.7, 4} {
		num := (F(x+h) - F(x-h)) / (2 * h)
		if math.Abs(FPrime(x)-num) > 1e-6 {
			t.Fatalf("FPrime(%v) = %v, numeric %v", x, FPrime(x), num)
		}
	}
}

func TestLinearizerInterpolatesAtBreakpoints(t *testing.T) {
	l := testLinearizer(t, 1000)
	h := l.Delta()
	for c := 0; c <= 1000; c += 100 {
		x := -DefaultBound + float64(c)*h
		if x >= DefaultBound {
			break
		}
		if math.Abs(l.Eval(x)-F(x)) > 1e-12 {
			t.Fatalf("interpolant not exact at breakpoint %v: %v vs %v", x, l.Eval(x), F(x))
		}
	}
}

func TestLinearizerErrorBoundLemma9(t *testing.T) {
	// |f − s| ≤ (Δx)² max|f″| / 8 on the domain (Lemma 9).
	l := testLinearizer(t, 4096)
	bound := l.MaxAbsError()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		x := (rng.Float64()*2 - 1) * DefaultBound
		if err := math.Abs(l.Eval(x) - F(x)); err > bound+1e-15 {
			t.Fatalf("error %v at x=%v exceeds Lemma 9 bound %v", err, x, bound)
		}
	}
}

func TestLinearizerErrorShrinksQuadratically(t *testing.T) {
	// Halving Δx should shrink the max observed error ~4x (O((Δx)²), Thm 4's
	// driver). Allow generous slack for sampling noise.
	coarse := testLinearizer(t, 512)
	fine := testLinearizer(t, 1024)
	rng := rand.New(rand.NewSource(2))
	maxErr := func(l *Linearizer) float64 {
		var m float64
		for i := 0; i < 50000; i++ {
			x := (rng.Float64()*2 - 1) * 10 // stay where f has curvature
			if e := math.Abs(l.Eval(x) - F(x)); e > m {
				m = e
			}
		}
		return m
	}
	ec, ef := maxErr(coarse), maxErr(fine)
	ratio := ec / ef
	if ratio < 2.5 {
		t.Fatalf("error ratio %v after halving Δx; want ≳4 (quadratic)", ratio)
	}
}

func TestLinearizerOutsideDomainConstant(t *testing.T) {
	l := testLinearizer(t, 100)
	a, b := l.Coefficients(-50)
	if a != 0 || math.Abs(b-F(-DefaultBound)) > 1e-15 {
		t.Fatalf("left extension (a,b) = (%v,%v)", a, b)
	}
	a, b = l.Coefficients(DefaultBound + 1)
	if a != 0 || math.Abs(b-F(DefaultBound)) > 1e-15 {
		t.Fatalf("right extension (a,b) = (%v,%v)", a, b)
	}
	// At the right edge exactly.
	a, _ = l.Coefficients(DefaultBound)
	if a != 0 {
		t.Fatalf("x = bound should use constant extension, a = %v", a)
	}
}

func TestLinearizerSlopeNegativeProperty(t *testing.T) {
	// f is monotonically decreasing so every secant slope a must be ≤ 0 —
	// this is the property the convergence proof leans on (−a·xxᵀ PSD).
	l := testLinearizer(t, 2048)
	f := func(raw float64) bool {
		x := math.Mod(raw, DefaultBound)
		a, _ := l.Coefficients(x)
		return a <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLinearizerCellLookupConsistency(t *testing.T) {
	// Eval must be continuous across cell boundaries to within the secant
	// construction (shared breakpoints).
	l := testLinearizer(t, 333)
	h := l.Delta()
	for c := 1; c < 333; c += 7 {
		x := -DefaultBound + float64(c)*h
		left := l.Eval(x - 1e-12)
		right := l.Eval(x + 1e-12)
		if math.Abs(left-right) > 1e-9 {
			t.Fatalf("discontinuity at breakpoint %v: %v vs %v", x, left, right)
		}
	}
}

func TestNewLinearizerValidation(t *testing.T) {
	if _, err := NewLinearizer(F, 0, 10); err != ErrBadConfig {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewLinearizer(F, 1, 0); err != ErrBadConfig {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultLinearizerConfig(t *testing.T) {
	l := NewSigmoidLinearizer()
	if l.Delta() != 2*DefaultBound/float64(DefaultCells) {
		t.Fatalf("Delta = %v", l.Delta())
	}
	if l.FootprintBytes() != int64(DefaultCells)*16 {
		t.Fatalf("FootprintBytes = %v", l.FootprintBytes())
	}
	// Paper-scale grid: error bound must be tiny.
	if l.MaxAbsError() > 1e-8 {
		t.Fatalf("paper-scale MaxAbsError = %v", l.MaxAbsError())
	}
}
