// Package interp implements the 1-D piecewise linear interpolation used to
// linearize the non-linear component of the logistic-regression update rule
// (Sec 4.2 of the paper).
//
// The function being linearized is f(x) = 1 − 1/(1+e^{−x}); at iteration t,
// f(yᵢ·w⁽ᵗ⁾ᵀxᵢ) is replaced by s(x) = a·x + b where (a, b) are the secant
// coefficients of the sub-interval containing x. The paper partitions
// [−20, 20] into 10⁶ equal sub-intervals and treats s as constant outside
// the domain (f is within ~2·10⁻⁹ of its asymptote there). Lemma 9 gives the
// approximation bounds |f−s| = O((Δx)²), |f′−s′| = O(Δx).
package interp

import (
	"errors"
	"math"
)

// Sigmoid returns the standard logistic sigmoid 1/(1+e^{−x}).
func Sigmoid(x float64) float64 {
	// Numerically stable branches.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// F is the paper's non-linear component f(x) = 1 − 1/(1+e^{−x}) = σ(−x).
func F(x float64) float64 { return Sigmoid(-x) }

// FPrime is f′(x) = −σ(x)·σ(−x) (always negative).
func FPrime(x float64) float64 { return -Sigmoid(x) * Sigmoid(-x) }

// Linearizer holds a piecewise-linear interpolant of an arbitrary scalar
// function on [−Bound, Bound] with uniformly spaced breakpoints.
type Linearizer struct {
	bound float64
	n     int
	inv   float64 // n / (2*bound), converts x to a cell index
	// Per-cell secant coefficients: s(x) = a[c]*x + b[c].
	a, b []float64
	// Constant extensions outside the domain.
	lo, hi float64
}

// DefaultBound and DefaultCells mirror the paper's configuration
// (a = 20, 10⁶ equal sub-intervals).
const (
	DefaultBound = 20.0
	DefaultCells = 1_000_000
)

// ErrBadConfig reports an invalid linearizer configuration.
var ErrBadConfig = errors.New("interp: bound and cells must be positive")

// NewLinearizer tabulates fn on [−bound, bound] with cells sub-intervals.
func NewLinearizer(fn func(float64) float64, bound float64, cells int) (*Linearizer, error) {
	if bound <= 0 || cells <= 0 {
		return nil, ErrBadConfig
	}
	l := &Linearizer{
		bound: bound,
		n:     cells,
		inv:   float64(cells) / (2 * bound),
		a:     make([]float64, cells),
		b:     make([]float64, cells),
		lo:    fn(-bound),
		hi:    fn(bound),
	}
	h := 2 * bound / float64(cells)
	prevX := -bound
	prevF := fn(prevX)
	for c := 0; c < cells; c++ {
		x1 := -bound + float64(c+1)*h
		f1 := fn(x1)
		a := (f1 - prevF) / h
		l.a[c] = a
		l.b[c] = prevF - a*prevX
		prevX, prevF = x1, f1
	}
	return l, nil
}

// NewSigmoidLinearizer returns the paper's default linearizer of F.
func NewSigmoidLinearizer() *Linearizer {
	l, err := NewLinearizer(F, DefaultBound, DefaultCells)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return l
}

// Delta returns the sub-interval width Δx.
func (l *Linearizer) Delta() float64 { return 2 * l.bound / float64(l.n) }

// Coefficients returns the linear coefficients (a, b) such that the
// interpolant at x is a·x + b. Outside [−bound, bound] the interpolant is the
// constant boundary value (a = 0), matching the paper's convention.
func (l *Linearizer) Coefficients(x float64) (a, b float64) {
	if x < -l.bound {
		return 0, l.lo
	}
	if x >= l.bound {
		return 0, l.hi
	}
	c := int((x + l.bound) * l.inv)
	if c >= l.n { // guard x == bound-ulp rounding
		c = l.n - 1
	}
	return l.a[c], l.b[c]
}

// Eval returns the interpolant value s(x).
func (l *Linearizer) Eval(x float64) float64 {
	a, b := l.Coefficients(x)
	return a*x + b
}

// MaxAbsError returns a bound on |f−s| over the tabulated domain using
// Lemma 9: (Δx)²·max|f″|/8. For f(x) = σ(−x), max|f″| = 1/(6√3) ≈ 0.0962.
func (l *Linearizer) MaxAbsError() float64 {
	const maxF2 = 0.09622504486493764 // max |f''| of the sigmoid family
	dx := l.Delta()
	return dx * dx * maxF2 / 8
}

// FootprintBytes estimates the memory the coefficient tables occupy.
func (l *Linearizer) FootprintBytes() int64 {
	return int64(len(l.a))*8 + int64(len(l.b))*8
}
