package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/par"
)

// SparseLogisticProvenance implements PrIU's sparse-dataset path (Sec 5.3):
// for sparse training data the dense optimizations (cached Σ-matrices, SVD)
// do not apply because the SVD factors of a sparse provenance matrix are
// dense. Instead only the linearization coefficients aᵢ,⁽ᵗ⁾/bᵢ,⁽ᵗ⁾ of each
// batch member are cached, and the update phase replays the linearized rule
// (Eq 11) directly with sparse matrix-vector products — the speed-up over
// retraining comes from skipping removed samples and the non-linear
// (exp) evaluations, which is why the paper reports only ~10% gains here.
type SparseLogisticProvenance struct {
	cfg   gbm.Config
	sched *gbm.Schedule
	data  *dataset.SparseDataset

	modelL     *gbm.Model
	modelExact *gbm.Model

	aCoef, bCoef [][]float64
}

// CaptureLogisticSparse trains the linearized sparse logistic model over the
// full dataset, caching the per-batch-member linearization coefficients.
func CaptureLogisticSparse(d *dataset.SparseDataset, cfg gbm.Config, sched *gbm.Schedule, lin *interp.Linearizer) (*SparseLogisticProvenance, error) {
	if d.Task != dataset.BinaryClassification {
		return nil, fmt.Errorf("core: CaptureLogisticSparse requires binary labels, got %v", d.Task)
	}
	if err := cfg.Validate(d.N()); err != nil {
		return nil, err
	}
	if sched == nil || sched.N() != d.N() || sched.Iterations() < cfg.Iterations {
		return nil, fmt.Errorf("core: schedule incompatible with dataset/config")
	}
	if lin == nil {
		lin = interp.NewSigmoidLinearizer()
	}
	exact, err := gbm.TrainLogisticSparse(d, cfg, sched, nil)
	if err != nil {
		return nil, err
	}
	m := d.M()
	sp := &SparseLogisticProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		modelExact: exact,
		aCoef:      make([][]float64, cfg.Iterations),
		bCoef:      make([][]float64, cfg.Iterations),
	}
	w := make([]float64, m)
	step := make([]float64, m)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		b := len(batch)
		av := make([]float64, b)
		bv := make([]float64, b)
		mat.ZeroVec(step)
		for k, i := range batch {
			yi := d.Y[i]
			z := yi * d.X.RowDot(i, w)
			a, bc := lin.Coefficients(z)
			av[k], bv[k] = a, bc
			// yᵢ·xᵢ·s(z) = xᵢ·(a·(xᵢᵀw) + b·yᵢ) since yᵢ² = 1.
			d.X.AddScaledRow(step, i, a*(z*yi)+bc*yi)
		}
		sp.aCoef[t] = av
		sp.bCoef[t] = bv
		decay := 1 - cfg.Eta*cfg.Lambda
		f := cfg.Eta / float64(b)
		for j := range w {
			w[j] = decay*w[j] + f*step[j]
		}
	}
	sp.modelL = &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}
	return sp, nil
}

// Model returns the standard-rule initial model Minit.
func (sp *SparseLogisticProvenance) Model() *gbm.Model { return sp.modelExact }

// LinearizedModel returns the model trained with the linearized rule.
func (sp *SparseLogisticProvenance) LinearizedModel() *gbm.Model { return sp.modelL }

// Update replays the linearized rule without the removed samples (Eq 11),
// reusing the cached coefficients so no sigmoid is evaluated online.
func (sp *SparseLogisticProvenance) Update(removed []int) (*gbm.Model, error) {
	if sp.aCoef == nil {
		return nil, ErrNoCapture
	}
	rm, err := gbm.RemovalSet(sp.data.N(), removed)
	if err != nil {
		return nil, err
	}
	mask := removalMask(sp.data.N(), rm)
	d := sp.data
	m := d.M()
	w := make([]float64, m)
	eta, lambda := sp.cfg.Eta, sp.cfg.Lambda
	// Chunk grain so each chunk touches ~the memory cutoff worth of stored
	// non-zeros; small batches collapse to a single chunk and replay serially.
	rows, _ := d.X.Dims()
	avgNNZ := 0
	if rows > 0 {
		avgNNZ = d.X.NNZ() / rows
	}
	grain := par.Grain(avgNNZ)
	for t := 0; t < sp.cfg.Iterations; t++ {
		batch := sp.sched.Batch(t)
		// Row-parallel linearized replay: each chunk scatters its batch slice
		// into a private accumulator (sparse SpMV-transpose shape). The chunk
		// plan and fold order depend only on (len(batch), grain) — never on
		// the worker count — so the replayed model is bitwise identical at any
		// pool size.
		acc := par.MapReduceDet(len(batch), grain,
			func() *sparseStepAcc { return &sparseStepAcc{step: make([]float64, m)} },
			func(acc *sparseStepAcc, lo, hi int) *sparseStepAcc {
				for k := lo; k < hi; k++ {
					i := batch[k]
					if mask != nil && mask[i] {
						continue
					}
					acc.bU++
					yi := d.Y[i]
					// a·xᵢxᵢᵀw + b·yᵢxᵢ accumulated as one sparse axpy.
					coef := sp.aCoef[t][k]*d.X.RowDot(i, w) + sp.bCoef[t][k]*yi
					d.X.AddScaledRow(acc.step, i, coef)
				}
				return acc
			},
			func(a, b *sparseStepAcc) *sparseStepAcc {
				mat.Axpy(a.step, 1, b.step)
				a.bU += b.bU
				return a
			})
		decay := 1 - eta*lambda
		if acc.bU == 0 {
			mat.ScaleVec(w, decay)
			continue
		}
		f := eta / float64(acc.bU)
		for j := range w {
			w[j] = decay*w[j] + f*acc.step[j]
		}
	}
	return &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}, nil
}

// sparseStepAcc is a worker-private accumulator for the parallel batch
// replay: the partial step vector and the surviving-member count.
type sparseStepAcc struct {
	step []float64
	bU   int
}

// FootprintBytes returns the coefficient-cache memory (O(τ·B) floats).
func (sp *SparseLogisticProvenance) FootprintBytes() int64 {
	var total int64
	for t := range sp.aCoef {
		total += int64(len(sp.aCoef[t]))*8 + int64(len(sp.bCoef[t]))*8
	}
	total += sp.sched.FootprintBytes()
	return total
}
