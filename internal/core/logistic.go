package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/par"
)

// LogisticProvenance holds the provenance cached while training a binary
// logistic-regression model with the linearized update rule (Sec 4.2 + 5.3):
// per iteration the sums C⁽ᵗ⁾ = Σ aᵢ,⁽ᵗ⁾xᵢxᵢᵀ and D⁽ᵗ⁾ = Σ bᵢ,⁽ᵗ⁾yᵢxᵢ
// (full or SVD-factored), plus the per-sample linear coefficients needed to
// subtract removed contributions at update time.
type LogisticProvenance struct {
	cfg   gbm.Config
	sched *gbm.Schedule
	data  *dataset.Dataset
	lin   *interp.Linearizer

	// modelL is the model trained with the linearized rule (w_L of Eq 9);
	// modelExact is the standard-rule model Minit for accuracy comparisons.
	modelL     *gbm.Model
	modelExact *gbm.Model

	useSVD bool
	caches []*iterCache // C⁽ᵗ⁾
	dvecs  [][]float64  // D⁽ᵗ⁾
	// aCoef[t][k], bCoef[t][k] are the linearization coefficients of batch
	// member k at iteration t (aligned with sched.Batch(t)).
	aCoef, bCoef [][]float64

	maxRank int
}

// CaptureLogistic trains the linearized binary logistic model over the full
// dataset, caching provenance for incremental updates. lin may be nil, in
// which case a linearizer at the paper's default resolution is built.
func CaptureLogistic(d *dataset.Dataset, cfg gbm.Config, sched *gbm.Schedule, lin *interp.Linearizer, opts Options) (*LogisticProvenance, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if d.Task != dataset.BinaryClassification {
		return nil, fmt.Errorf("core: CaptureLogistic requires binary labels, got %v", d.Task)
	}
	if err := cfg.Validate(d.N()); err != nil {
		return nil, err
	}
	if sched == nil || sched.N() != d.N() || sched.Iterations() < cfg.Iterations {
		return nil, fmt.Errorf("core: schedule incompatible with dataset/config")
	}
	if lin == nil {
		lin = interp.NewSigmoidLinearizer()
	}
	exact, err := gbm.TrainLogistic(d, cfg, sched, nil)
	if err != nil {
		return nil, err
	}
	m := d.M()
	useSVD := opts.Mode == ModeSVD || (opts.Mode == ModeAuto && m > cfg.BatchSize)
	lp := &LogisticProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		lin:        lin,
		modelExact: exact,
		useSVD:     useSVD,
		caches:     make([]*iterCache, cfg.Iterations),
		dvecs:      make([][]float64, cfg.Iterations),
		aCoef:      make([][]float64, cfg.Iterations),
		bCoef:      make([][]float64, cfg.Iterations),
	}
	eps := opts.epsilon()
	w := make([]float64, m)
	rowBuf := make([][]float64, cfg.BatchSize)
	cw := make([]float64, m)
	scratch := make([]float64, m) // rank never exceeds min(B, m)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		b := len(batch)
		rows := rowBuf[:b]
		av := make([]float64, b)
		bv := make([]float64, b)
		dv := make([]float64, m)
		// The w-chain is inherently sequential (each iteration linearizes at
		// the current w), but within an iteration every batch member's
		// coefficient is an independent dot product writing its own av/bv
		// slot, so that inner loop fans out. The dv fold stays serial in k
		// order to keep its accumulation order fixed.
		par.For(b, par.Grain(2*m), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := batch[k]
				xi := d.X.Row(i)
				rows[k] = xi
				av[k], bv[k] = lin.Coefficients(d.Y[i] * mat.Dot(xi, w))
			}
		})
		for k, i := range batch {
			mat.Axpy(dv, bv[k]*d.Y[i], rows[k])
		}
		c, err := weightedGramCache(rows, av, m, useSVD, eps)
		if err != nil {
			return nil, err
		}
		lp.caches[t] = c
		lp.dvecs[t] = dv
		lp.aCoef[t] = av
		lp.bCoef[t] = bv
		if r := c.rank(); r > lp.maxRank {
			lp.maxRank = r
		}
		// Advance w with the linearized rule (Eq 9): the cached C/D are the
		// exact per-batch sums, so reuse them.
		c.apply(cw, w, scratch)
		decay := 1 - cfg.Eta*cfg.Lambda
		f := cfg.Eta / float64(b)
		for j := range w {
			w[j] = decay*w[j] + f*(cw[j]+dv[j])
		}
	}
	lp.modelL = &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}
	return lp, nil
}

// Model returns the standard-rule initial model Minit.
func (lp *LogisticProvenance) Model() *gbm.Model { return lp.modelExact }

// LinearizedModel returns w_L, the model trained with the linearized rule;
// by Theorem 4 it is within O((Δx)²) of Minit.
func (lp *LogisticProvenance) LinearizedModel() *gbm.Model { return lp.modelL }

// UsesSVD reports whether the caches store truncated SVD factors.
func (lp *LogisticProvenance) UsesSVD() bool { return lp.useSVD }

// MaxRank returns the largest truncation rank across iterations.
func (lp *LogisticProvenance) MaxRank() int { return lp.maxRank }

// Update incrementally computes the updated parameters w_LU after removing
// the given samples (Eq 19/20): per iteration the cached C/D are applied to
// the evolving w and the removed samples' contributions are subtracted with
// O(ΔB·m) matrix-vector work.
func (lp *LogisticProvenance) Update(removed []int) (*gbm.Model, error) {
	if lp.caches == nil {
		return nil, ErrNoCapture
	}
	rm, err := gbm.RemovalSet(lp.data.N(), removed)
	if err != nil {
		return nil, err
	}
	m := lp.data.M()
	w := make([]float64, m)
	lp.updateInto(w, rm, 0, lp.cfg.Iterations)
	return &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}, nil
}

// updateInto rolls the incremental update from iteration t0 (exclusive of
// tEnd) on the parameter vector w in place. Shared with PrIU-opt, which uses
// t0 > 0 for its post-termination phase.
func (lp *LogisticProvenance) updateInto(w []float64, rm map[int]bool, t0, tEnd int) {
	mask := removalMask(lp.data.N(), rm)
	m := lp.data.M()
	cw := make([]float64, m)
	scratchLen := lp.maxRank
	if m > scratchLen {
		scratchLen = m
	}
	scratch := make([]float64, scratchLen)
	dDV := make([]float64, m)
	eta, lambda := lp.cfg.Eta, lp.cfg.Lambda
	for t := t0; t < tEnd; t++ {
		batch := lp.sched.Batch(t)
		lp.caches[t].apply(cw, w, scratch)
		bU := len(batch)
		removedAny := false
		dGW := scratch[:m]
		for k, i := range batch {
			if mask == nil || !mask[i] {
				continue
			}
			bU--
			if !removedAny {
				removedAny = true
				mat.ZeroVec(dGW)
				mat.ZeroVec(dDV)
			}
			xi := lp.data.X.Row(i)
			// ΔC⁽ᵗ⁾w = Σ aᵢ·xᵢ(xᵢᵀw); ΔD⁽ᵗ⁾ = Σ bᵢ·yᵢxᵢ.
			mat.Axpy(dGW, lp.aCoef[t][k]*mat.Dot(xi, w), xi)
			mat.Axpy(dDV, lp.bCoef[t][k]*lp.data.Y[i], xi)
		}
		decay := 1 - eta*lambda
		if bU == 0 {
			mat.ScaleVec(w, decay)
			continue
		}
		f := eta / float64(bU)
		dv := lp.dvecs[t]
		if !removedAny {
			for j := range w {
				w[j] = decay*w[j] + f*(cw[j]+dv[j])
			}
		} else {
			for j := range w {
				w[j] = decay*w[j] + f*(cw[j]-dGW[j]+dv[j]-dDV[j])
			}
		}
	}
}

// FootprintBytes returns the memory occupied by the cached provenance:
// C/D caches, the linear coefficients (the O(n·⌈τB/n⌉) term of Sec 5.3) and
// the batch lists.
func (lp *LogisticProvenance) FootprintBytes() int64 {
	var total int64
	for _, c := range lp.caches {
		total += c.footprint()
	}
	for _, dv := range lp.dvecs {
		total += int64(len(dv)) * 8
	}
	for t := range lp.aCoef {
		total += int64(len(lp.aCoef[t]))*8 + int64(len(lp.bCoef[t]))*8
	}
	total += lp.sched.FootprintBytes()
	return total
}
