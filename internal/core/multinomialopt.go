package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// MultinomialOpt is PrIU-opt for multinomial logistic regression: the
// early-termination strategy of Sec 5.4 applied per class. PrIU capture runs
// for the first ts iterations; the per-class linearization coefficients are
// then frozen at their iteration-ts values, the stabilized full-data matrices
// C*ₖ = Σᵢ aₖᵢ,*·xᵢxᵢᵀ and D*ₖ = Σᵢ cₖᵢ,*·xᵢ are eigendecomposed offline,
// and the online update finishes the remaining τ−ts iterations as scalar
// recurrences in each class's eigenbasis.
type MultinomialOpt struct {
	prov           *MultinomialProvenance
	ts             int
	fullIterations int

	// Stabilized per-class coefficients for every sample: index [k*n+i].
	aStar, cStar []float64
	// Per-class eigendecompositions of C*ₖ and the vectors D*ₖ.
	eigs  []*mat.Eigen
	dStar [][]float64
}

// CaptureMultinomialOpt performs the PrIU-opt offline phase for multinomial
// logistic regression.
func CaptureMultinomialOpt(d *dataset.Dataset, cfg gbm.Config, sched *gbm.Schedule, opts Options) (*MultinomialOpt, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ts := int(float64(cfg.Iterations) * opts.earlyTermFrac())
	if ts < 1 {
		ts = 1
	}
	if ts > cfg.Iterations {
		ts = cfg.Iterations
	}
	capCfg := cfg
	capCfg.Iterations = ts
	prov, err := CaptureMultinomial(d, capCfg, sched, opts)
	if err != nil {
		return nil, err
	}
	mo := &MultinomialOpt{prov: prov, ts: ts, fullIterations: cfg.Iterations}

	m, q, n := d.M(), d.Classes, d.N()
	w := prov.modelL.W
	mo.aStar = make([]float64, q*n)
	mo.cStar = make([]float64, q*n)
	mo.eigs = make([]*mat.Eigen, q)
	mo.dStar = make([][]float64, q)
	cMats := make([]*mat.Dense, q)
	for k := 0; k < q; k++ {
		cMats[k] = mat.NewDense(m, m)
		mo.dStar[k] = make([]float64, m)
	}
	logits := make([]float64, q)
	probs := make([]float64, q)
	for i := 0; i < n; i++ {
		xi := d.X.Row(i)
		for k := 0; k < q; k++ {
			logits[k] = mat.Dot(w.Row(k), xi)
		}
		gbm.Softmax(probs, logits)
		yi := int(d.Y[i])
		for k := 0; k < q; k++ {
			a := probs[k] * (1 - probs[k])
			c := probs[k] - a*logits[k]
			if k == yi {
				c -= 1
			}
			mo.aStar[k*n+i] = a
			mo.cStar[k*n+i] = c
			if a != 0 {
				mat.AddOuter(cMats[k], xi, xi, a)
			}
			mat.Axpy(mo.dStar[k], c, xi)
		}
	}
	for k := 0; k < q; k++ {
		eig, err := mat.NewEigenSym(cMats[k])
		if err != nil {
			return nil, err
		}
		mo.eigs[k] = eig
	}
	return mo, nil
}

// Model returns the standard-rule initial model.
func (mo *MultinomialOpt) Model() *gbm.Model { return mo.prov.Model() }

// Ts returns the early-termination iteration.
func (mo *MultinomialOpt) Ts() int { return mo.ts }

// Update computes the updated parameters: PrIU iterations to ts, then the
// per-class eigen recurrences with incrementally updated eigenvalues.
func (mo *MultinomialOpt) Update(removed []int) (*gbm.Model, error) {
	if mo.eigs == nil {
		return nil, ErrNoCapture
	}
	d := mo.prov.data
	rm, err := gbm.RemovalSet(d.N(), removed)
	if err != nil {
		return nil, err
	}
	m, q, n := d.M(), mo.prov.q, d.N()
	dn := len(rm)
	nEff := n - dn
	if nEff <= 0 {
		return nil, fmt.Errorf("core: removal leaves no samples")
	}

	// Phase 1: PrIU to ts.
	w := mat.NewDense(q, m)
	mo.prov.updateInto(w, rm, 0, mo.ts)

	// Phase 2: per-class eigen recurrences.
	eta, lambda := mo.prov.cfg.Eta, mo.prov.cfg.Lambda
	rem := mo.fullIterations - mo.ts
	removedIdx := make([]int, 0, dn)
	for i := 0; i < n; i++ {
		if rm[i] {
			removedIdx = append(removedIdx, i)
		}
	}
	for k := 0; k < q; k++ {
		dStar := mat.CloneVec(mo.dStar[k])
		var cPrime []float64
		if dn == 0 {
			cPrime = mat.CloneVec(mo.eigs[k].Values)
		} else {
			// ΔC*ₖ = Σ_{i∈R} aₖᵢ,*·xᵢxᵢᵀ = ZᵀZ with rows √aₖᵢ,*·xᵢ (a ≥ 0);
			// removal subtracts it, so the eigenvalue update uses sign −1.
			z := mat.NewDense(dn, m)
			for r, i := range removedIdx {
				xi := d.X.Row(i)
				s := sqrtAbs(mo.aStar[k*n+i])
				dst := z.Row(r)
				for j, v := range xi {
					dst[j] = s * v
				}
				mat.Axpy(dStar, -mo.cStar[k*n+i], xi)
			}
			cPrime = mo.eigs[k].UpdateValuesGram(z, -1)
		}
		zc := mo.eigs[k].Q.MulVecT(w.Row(k))
		dt := mo.eigs[k].Q.MulVecT(dStar)
		for i := 0; i < m; i++ {
			gamma := 1 - eta*lambda - eta*cPrime[i]/float64(nEff)
			beta := -eta * dt[i] / float64(nEff)
			zi := zc[i]
			for t := 0; t < rem; t++ {
				zi = gamma*zi + beta
			}
			zc[i] = zi
		}
		copy(w.Row(k), mo.eigs[k].Q.MulVec(zc))
	}
	return &gbm.Model{Task: dataset.MultiClassification, W: w}, nil
}

// FootprintBytes returns the provenance memory: the ts-truncated PrIU caches
// plus the per-class O(m²) eigen state and stabilized coefficients.
func (mo *MultinomialOpt) FootprintBytes() int64 {
	total := mo.prov.FootprintBytes()
	for k := range mo.eigs {
		r, c := mo.eigs[k].Q.Dims()
		total += int64(r)*int64(c)*8 + int64(len(mo.eigs[k].Values))*8
		total += int64(len(mo.dStar[k])) * 8
	}
	total += int64(len(mo.aStar))*8 + int64(len(mo.cStar))*8
	return total
}
