package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

func TestMultinomialOptCloseToBaseL(t *testing.T) {
	d, err := dataset.GenerateMulticlass("mco", 240, 6, 3, 2.5, 91)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 40, Iterations: 300, Seed: 92}
	sched, err := gbm.NewSchedule(240, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := CaptureMultinomialOpt(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if mo.Ts() != 210 {
		t.Fatalf("ts = %d, want 0.7·300", mo.Ts())
	}
	removed := pickRemoved(240, 5, 93)
	rm, _ := gbm.RemovalSet(240, removed)
	want, err := gbm.TrainMultinomial(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mo.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.98 {
		t.Fatalf("PrIU-opt multinomial cosine %v", cos)
	}
	pg := got.PredictMulticlass(d.X)
	pw := want.PredictMulticlass(d.X)
	agree := 0
	for i := range pg {
		if pg[i] == pw[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pg)); frac < 0.95 {
		t.Fatalf("prediction agreement %v", frac)
	}
	if mo.FootprintBytes() <= 0 {
		t.Fatal("footprint must be positive")
	}
}

func TestMultinomialOptEmptyRemoval(t *testing.T) {
	d, err := dataset.GenerateMulticlass("mco2", 120, 5, 3, 2.5, 94)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 30, Iterations: 100, Seed: 95}
	sched, err := gbm.NewSchedule(120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := CaptureMultinomialOpt(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	base, err := gbm.TrainMultinomial(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mo.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, base); cos < 0.98 {
		t.Fatalf("no-removal cosine %v", cos)
	}
}

func TestLogisticOptFootprintBelowFullPrIU(t *testing.T) {
	// Early termination should shrink the cache roughly by the ts/τ ratio.
	d, err := dataset.GenerateBinary("fp", 150, 8, 1.2, 96)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 30, Iterations: 200, Seed: 97}
	sched, err := gbm.NewSchedule(150, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CaptureLogistic(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := CaptureLogisticOpt(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if opt.FootprintBytes() >= full.FootprintBytes() {
		t.Fatalf("PrIU-opt footprint %d should be below PrIU %d",
			opt.FootprintBytes(), full.FootprintBytes())
	}
}

func TestEigenGramSignedConsistency(t *testing.T) {
	// UpdateValuesGram(z, −1) must equal UpdateValuesLowRank(z).
	a := mat.NewDenseData(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 2})
	eig, err := mat.NewEigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	z := mat.NewDenseData(2, 3, []float64{0.1, 0.2, 0.3, -0.2, 0.1, 0})
	neg := eig.UpdateValuesGram(z, -1)
	lr := eig.UpdateValuesLowRank(z)
	for i := range neg {
		if neg[i] != lr[i] {
			t.Fatalf("signed gram update mismatch at %d: %v vs %v", i, neg[i], lr[i])
		}
	}
}
