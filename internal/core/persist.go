package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/binio"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// Provenance-cache persistence. Capture is the expensive offline phase; in a
// production deployment it runs once per training job and the caches are
// persisted so later deletion requests (possibly in different processes)
// reuse them. The format is a simple versioned little-endian binary layout.
//
// The training dataset itself and the batch schedule seed are NOT stored —
// the loader receives the dataset and rebuilds the schedule from the saved
// config, then verifies a dataset fingerprint so a cache can't silently be
// applied to different data.

const (
	persistMagic   = "PRIU"
	persistVersion = 1

	// maxPersistIterations bounds the decoded iteration count so a hostile
	// or corrupt stream cannot demand absurd allocations (element counts are
	// bounded by binio.MaxElems with chunked reads).
	maxPersistIterations = 1 << 22
)

// writeDense serializes a matrix (nil encoded as -1 rows).
func writeDense(bw *binio.Writer, m *mat.Dense) {
	if m == nil {
		bw.I64(-1)
		return
	}
	r, c := m.Dims()
	bw.I64(int64(r))
	bw.I64(int64(c))
	for _, x := range m.Data() {
		bw.F64(x)
	}
}

// readDense decodes a matrix written by writeDense, bounded against hostile
// dimension headers.
func readDense(br *binio.Reader) *mat.Dense {
	r := br.I64()
	if r == -1 {
		return nil
	}
	c := br.I64()
	if br.Err != nil || r <= 0 || c <= 0 || r*c > binio.MaxElems {
		br.Fail("core: corrupt matrix dims %dx%d", r, c)
		return nil
	}
	data := br.FloatsN(r * c)
	if br.Err != nil {
		return nil
	}
	return mat.NewDenseData(int(r), int(c), data)
}

// fnvMixer accumulates an FNV-1a hash over 64-bit words.
type fnvMixer uint64

func newFNVMixer() *fnvMixer {
	m := fnvMixer(14695981039346656037)
	return &m
}

func (h *fnvMixer) mix(v uint64) {
	const prime = 1099511628211
	x := uint64(*h)
	for s := 0; s < 64; s += 8 {
		x ^= (v >> s) & 0xff
		x *= prime
	}
	*h = fnvMixer(x)
}

// fingerprint hashes dataset shape and a sample of entries (FNV-1a) so a
// persisted cache is rejected when loaded against different data.
func fingerprint(d *dataset.Dataset) uint64 {
	h := newFNVMixer()
	h.mix(uint64(d.N()))
	h.mix(uint64(d.M()))
	h.mix(uint64(d.Task))
	stride := d.N()*d.M()/1024 + 1
	data := d.X.Data()
	for i := 0; i < len(data); i += stride {
		h.mix(math.Float64bits(data[i]))
	}
	for i := 0; i < len(d.Y); i += d.N()/256 + 1 {
		h.mix(math.Float64bits(d.Y[i]))
	}
	return uint64(*h)
}

// sparseFingerprint is the CSR analogue of fingerprint: dimensions, a sample
// of the stored non-zeros, and a sample of the labels.
func sparseFingerprint(d *dataset.SparseDataset) uint64 {
	h := newFNVMixer()
	rows, cols := d.X.Dims()
	h.mix(uint64(rows))
	h.mix(uint64(cols))
	h.mix(uint64(d.Task))
	h.mix(uint64(d.X.NNZ()))
	for i := 0; i < rows; i += rows/256 + 1 {
		rcols, rvals := d.X.Row(i)
		for k := 0; k < len(rvals); k += len(rvals)/8 + 1 {
			h.mix(uint64(rcols[k]))
			h.mix(math.Float64bits(rvals[k]))
		}
	}
	for i := 0; i < len(d.Y); i += rows/256 + 1 {
		h.mix(math.Float64bits(d.Y[i]))
	}
	return uint64(*h)
}

func writeConfig(bw *binio.Writer, cfg gbm.Config) {
	bw.F64(cfg.Eta)
	bw.F64(cfg.Lambda)
	bw.I64(int64(cfg.BatchSize))
	bw.I64(int64(cfg.Iterations))
	bw.I64(cfg.Seed)
}

func readConfig(br *binio.Reader) gbm.Config {
	return gbm.Config{
		Eta:        br.F64(),
		Lambda:     br.F64(),
		BatchSize:  int(br.I64()),
		Iterations: int(br.I64()),
		Seed:       br.I64(),
	}
}

func writeCache(bw *binio.Writer, c *iterCache) {
	writeDense(bw, c.full)
	writeDense(bw, c.p)
	writeDense(bw, c.v)
}

func readCache(br *binio.Reader) *iterCache {
	return &iterCache{full: readDense(br), p: readDense(br), v: readDense(br)}
}

// WriteTo serializes the linear-regression provenance cache.
func (lp *LinearProvenance) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(persistMagic))
	bw.U64(persistVersion)
	bw.U64(fingerprint(lp.data))
	writeConfig(bw, lp.cfg)
	bw.Bool(lp.useSVD)
	bw.I64(int64(lp.maxRank))
	writeDense(bw, lp.model.W)
	bw.I64(int64(len(lp.caches)))
	for t := range lp.caches {
		writeCache(bw, lp.caches[t])
		bw.Floats(lp.dvecs[t])
	}
	return 0, bw.Flush()
}

// LoadLinearProvenance reads a cache written by WriteTo and re-binds it to
// the dataset it was captured from (verified by fingerprint).
func LoadLinearProvenance(r io.Reader, d *dataset.Dataset) (*LinearProvenance, error) {
	br, cfg, err := readHeader(r, fingerprint(d))
	if err != nil {
		return nil, err
	}
	useSVD := br.Bool()
	maxRank := int(br.I64())
	wMat := readDense(br)
	nCaches := br.I64()
	if br.Err != nil {
		return nil, br.Err
	}
	if nCaches < 0 || int(nCaches) != cfg.Iterations {
		return nil, fmt.Errorf("core: cache count %d does not match iterations %d", nCaches, cfg.Iterations)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		return nil, err
	}
	lp := &LinearProvenance{
		cfg:     cfg,
		sched:   sched,
		data:    d,
		model:   &gbm.Model{Task: dataset.Regression, W: wMat},
		useSVD:  useSVD,
		maxRank: maxRank,
		caches:  make([]*iterCache, nCaches),
		dvecs:   make([][]float64, nCaches),
	}
	for t := int64(0); t < nCaches; t++ {
		lp.caches[t] = readCache(br)
		lp.dvecs[t] = br.Floats()
	}
	if br.Err != nil {
		return nil, br.Err
	}
	return lp, nil
}

// WriteTo serializes the binary-logistic provenance cache.
func (lp *LogisticProvenance) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(persistMagic))
	bw.U64(persistVersion)
	bw.U64(fingerprint(lp.data))
	writeConfig(bw, lp.cfg)
	bw.Bool(lp.useSVD)
	bw.I64(int64(lp.maxRank))
	writeDense(bw, lp.modelL.W)
	writeDense(bw, lp.modelExact.W)
	bw.I64(int64(len(lp.caches)))
	for t := range lp.caches {
		writeCache(bw, lp.caches[t])
		bw.Floats(lp.dvecs[t])
		bw.Floats(lp.aCoef[t])
		bw.Floats(lp.bCoef[t])
	}
	return 0, bw.Flush()
}

// LoadLogisticProvenance reads a cache written by WriteTo. The linearizer is
// only needed for future captures, not updates, so it is not persisted.
func LoadLogisticProvenance(r io.Reader, d *dataset.Dataset) (*LogisticProvenance, error) {
	br, cfg, err := readHeader(r, fingerprint(d))
	if err != nil {
		return nil, err
	}
	useSVD := br.Bool()
	maxRank := int(br.I64())
	wL := readDense(br)
	wExact := readDense(br)
	nCaches := br.I64()
	if br.Err != nil {
		return nil, br.Err
	}
	if nCaches < 0 || int(nCaches) != cfg.Iterations {
		return nil, fmt.Errorf("core: cache count %d does not match iterations %d", nCaches, cfg.Iterations)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		return nil, err
	}
	lp := &LogisticProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		modelL:     &gbm.Model{Task: dataset.BinaryClassification, W: wL},
		modelExact: &gbm.Model{Task: dataset.BinaryClassification, W: wExact},
		useSVD:     useSVD,
		maxRank:    maxRank,
		caches:     make([]*iterCache, nCaches),
		dvecs:      make([][]float64, nCaches),
		aCoef:      make([][]float64, nCaches),
		bCoef:      make([][]float64, nCaches),
	}
	for t := int64(0); t < nCaches; t++ {
		lp.caches[t] = readCache(br)
		lp.dvecs[t] = br.Floats()
		lp.aCoef[t] = br.Floats()
		lp.bCoef[t] = br.Floats()
	}
	if br.Err != nil {
		return nil, br.Err
	}
	return lp, nil
}

// WriteTo serializes the multinomial provenance cache (per-class iteration
// caches, D-vectors and linearization coefficients).
func (mp *MultinomialProvenance) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(persistMagic))
	bw.U64(persistVersion)
	bw.U64(fingerprint(mp.data))
	writeConfig(bw, mp.cfg)
	bw.Bool(mp.useSVD)
	bw.I64(int64(mp.maxRank))
	bw.I64(int64(mp.q))
	writeDense(bw, mp.modelL.W)
	writeDense(bw, mp.modelExact.W)
	bw.I64(int64(len(mp.caches)))
	for t := range mp.caches {
		for k := 0; k < mp.q; k++ {
			writeCache(bw, mp.caches[t][k])
			bw.Floats(mp.dvecs[t][k])
		}
		bw.Floats(mp.aCoef[t])
		bw.Floats(mp.cCoef[t])
	}
	return 0, bw.Flush()
}

// LoadMultinomialProvenance reads a cache written by WriteTo and re-binds it
// to the dataset it was captured from (verified by fingerprint).
func LoadMultinomialProvenance(r io.Reader, d *dataset.Dataset) (*MultinomialProvenance, error) {
	br, cfg, err := readHeader(r, fingerprint(d))
	if err != nil {
		return nil, err
	}
	useSVD := br.Bool()
	maxRank := int(br.I64())
	q := int(br.I64())
	wL := readDense(br)
	wExact := readDense(br)
	nCaches := br.I64()
	if br.Err != nil {
		return nil, br.Err
	}
	if q < 1 || q != d.Classes {
		return nil, fmt.Errorf("core: cache class count %d does not match dataset's %d", q, d.Classes)
	}
	if nCaches < 0 || int(nCaches) != cfg.Iterations {
		return nil, fmt.Errorf("core: cache count %d does not match iterations %d", nCaches, cfg.Iterations)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		return nil, err
	}
	mp := &MultinomialProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		modelL:     &gbm.Model{Task: dataset.MultiClassification, W: wL},
		modelExact: &gbm.Model{Task: dataset.MultiClassification, W: wExact},
		useSVD:     useSVD,
		maxRank:    maxRank,
		q:          q,
		caches:     make([][]*iterCache, nCaches),
		dvecs:      make([][][]float64, nCaches),
		aCoef:      make([][]float64, nCaches),
		cCoef:      make([][]float64, nCaches),
	}
	for t := int64(0); t < nCaches; t++ {
		mp.caches[t] = make([]*iterCache, q)
		mp.dvecs[t] = make([][]float64, q)
		for k := 0; k < q; k++ {
			mp.caches[t][k] = readCache(br)
			mp.dvecs[t][k] = br.Floats()
		}
		mp.aCoef[t] = br.Floats()
		mp.cCoef[t] = br.Floats()
	}
	if br.Err != nil {
		return nil, br.Err
	}
	return mp, nil
}

// WriteTo serializes the sparse-logistic provenance cache. Only the
// linearization coefficients are stored (Sec 5.3 keeps no dense factors).
func (sp *SparseLogisticProvenance) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(persistMagic))
	bw.U64(persistVersion)
	bw.U64(sparseFingerprint(sp.data))
	writeConfig(bw, sp.cfg)
	writeDense(bw, sp.modelL.W)
	writeDense(bw, sp.modelExact.W)
	bw.I64(int64(len(sp.aCoef)))
	for t := range sp.aCoef {
		bw.Floats(sp.aCoef[t])
		bw.Floats(sp.bCoef[t])
	}
	return 0, bw.Flush()
}

// LoadSparseLogisticProvenance reads a cache written by WriteTo and re-binds
// it to the sparse dataset it was captured from (verified by fingerprint).
func LoadSparseLogisticProvenance(r io.Reader, d *dataset.SparseDataset) (*SparseLogisticProvenance, error) {
	br, cfg, err := readHeader(r, sparseFingerprint(d))
	if err != nil {
		return nil, err
	}
	wL := readDense(br)
	wExact := readDense(br)
	nCoef := br.I64()
	if br.Err != nil {
		return nil, br.Err
	}
	if nCoef < 0 || int(nCoef) != cfg.Iterations {
		return nil, fmt.Errorf("core: coefficient count %d does not match iterations %d", nCoef, cfg.Iterations)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		return nil, err
	}
	sp := &SparseLogisticProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		modelL:     &gbm.Model{Task: dataset.BinaryClassification, W: wL},
		modelExact: &gbm.Model{Task: dataset.BinaryClassification, W: wExact},
		aCoef:      make([][]float64, nCoef),
		bCoef:      make([][]float64, nCoef),
	}
	for t := int64(0); t < nCoef; t++ {
		sp.aCoef[t] = br.Floats()
		sp.bCoef[t] = br.Floats()
	}
	if br.Err != nil {
		return nil, br.Err
	}
	return sp, nil
}

// readHeader consumes the magic/version/fingerprint/config prefix shared by
// every provenance stream, verifying against the caller's fingerprint.
func readHeader(r io.Reader, wantFP uint64) (*binio.Reader, gbm.Config, error) {
	br := binio.NewReader(r)
	if err := br.Magic(persistMagic); err != nil {
		return nil, gbm.Config{}, fmt.Errorf("core: %w", err)
	}
	if v := br.U64(); v != persistVersion {
		return nil, gbm.Config{}, fmt.Errorf("core: unsupported version %d", v)
	}
	if fp := br.U64(); fp != wantFP {
		return nil, gbm.Config{}, fmt.Errorf("core: cache fingerprint does not match dataset")
	}
	cfg := readConfig(br)
	if br.Err != nil {
		return nil, gbm.Config{}, br.Err
	}
	if cfg.Iterations < 1 || cfg.Iterations > maxPersistIterations {
		return nil, gbm.Config{}, fmt.Errorf("core: persisted iteration count %d out of bounds", cfg.Iterations)
	}
	return br, cfg, nil
}
