package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// Provenance-cache persistence. Capture is the expensive offline phase; in a
// production deployment it runs once per training job and the caches are
// persisted so later deletion requests (possibly in different processes)
// reuse them. The format is a simple versioned little-endian binary layout.
//
// The training dataset itself and the batch schedule seed are NOT stored —
// the loader receives the dataset and rebuilds the schedule from the saved
// config, then verifies a dataset fingerprint so a cache can't silently be
// applied to different data.

const (
	persistMagic   = "PRIU"
	persistVersion = 1
)

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, b.err = b.w.Write(buf[:])
}

func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }
func (b *binWriter) bool(v bool)   { b.u64(map[bool]uint64{false: 0, true: 1}[v]) }
func (b *binWriter) floats(v []float64) {
	b.i64(int64(len(v)))
	for _, x := range v {
		b.f64(x)
	}
}

func (b *binWriter) dense(m *mat.Dense) {
	if m == nil {
		b.i64(-1)
		return
	}
	r, c := m.Dims()
	b.i64(int64(r))
	b.i64(int64(c))
	for _, x := range m.Data() {
		b.f64(x)
	}
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(b.r, buf[:]); err != nil {
		b.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }
func (b *binReader) bool() bool   { return b.u64() != 0 }

func (b *binReader) floats() []float64 {
	n := b.i64()
	if b.err != nil || n < 0 || n > 1<<32 {
		if b.err == nil {
			b.err = fmt.Errorf("core: corrupt float slice length %d", n)
		}
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = b.f64()
	}
	return out
}

func (b *binReader) dense() *mat.Dense {
	r := b.i64()
	if r == -1 {
		return nil
	}
	c := b.i64()
	if b.err != nil || r <= 0 || c <= 0 || r*c > 1<<32 {
		if b.err == nil {
			b.err = fmt.Errorf("core: corrupt matrix dims %dx%d", r, c)
		}
		return nil
	}
	data := make([]float64, r*c)
	for i := range data {
		data[i] = b.f64()
	}
	if b.err != nil {
		return nil
	}
	return mat.NewDenseData(int(r), int(c), data)
}

// fingerprint hashes dataset shape and a sample of entries (FNV-1a) so a
// persisted cache is rejected when loaded against different data.
func fingerprint(d *dataset.Dataset) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(d.N()))
	mix(uint64(d.M()))
	mix(uint64(d.Task))
	stride := d.N()*d.M()/1024 + 1
	data := d.X.Data()
	for i := 0; i < len(data); i += stride {
		mix(math.Float64bits(data[i]))
	}
	for i := 0; i < len(d.Y); i += d.N()/256 + 1 {
		mix(math.Float64bits(d.Y[i]))
	}
	return h
}

func writeConfig(bw *binWriter, cfg gbm.Config) {
	bw.f64(cfg.Eta)
	bw.f64(cfg.Lambda)
	bw.i64(int64(cfg.BatchSize))
	bw.i64(int64(cfg.Iterations))
	bw.i64(cfg.Seed)
}

func readConfig(br *binReader) gbm.Config {
	return gbm.Config{
		Eta:        br.f64(),
		Lambda:     br.f64(),
		BatchSize:  int(br.i64()),
		Iterations: int(br.i64()),
		Seed:       br.i64(),
	}
}

func writeCache(bw *binWriter, c *iterCache) {
	bw.dense(c.full)
	bw.dense(c.p)
	bw.dense(c.v)
}

func readCache(br *binReader) *iterCache {
	return &iterCache{full: br.dense(), p: br.dense(), v: br.dense()}
}

// WriteTo serializes the linear-regression provenance cache.
func (lp *LinearProvenance) WriteTo(w io.Writer) (int64, error) {
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.w.WriteString(persistMagic)
	bw.u64(persistVersion)
	bw.u64(fingerprint(lp.data))
	writeConfig(bw, lp.cfg)
	bw.bool(lp.useSVD)
	bw.i64(int64(lp.maxRank))
	bw.dense(lp.model.W)
	bw.i64(int64(len(lp.caches)))
	for t := range lp.caches {
		writeCache(bw, lp.caches[t])
		bw.floats(lp.dvecs[t])
	}
	if bw.err != nil {
		return 0, bw.err
	}
	return 0, bw.w.Flush()
}

// LoadLinearProvenance reads a cache written by WriteTo and re-binds it to
// the dataset it was captured from (verified by fingerprint).
func LoadLinearProvenance(r io.Reader, d *dataset.Dataset) (*LinearProvenance, error) {
	br := &binReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	if v := br.u64(); v != persistVersion {
		return nil, fmt.Errorf("core: unsupported version %d", v)
	}
	if fp := br.u64(); fp != fingerprint(d) {
		return nil, fmt.Errorf("core: cache fingerprint does not match dataset")
	}
	cfg := readConfig(br)
	useSVD := br.bool()
	maxRank := int(br.i64())
	wMat := br.dense()
	nCaches := br.i64()
	if br.err != nil {
		return nil, br.err
	}
	if nCaches < 0 || int(nCaches) != cfg.Iterations {
		return nil, fmt.Errorf("core: cache count %d does not match iterations %d", nCaches, cfg.Iterations)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		return nil, err
	}
	lp := &LinearProvenance{
		cfg:     cfg,
		sched:   sched,
		data:    d,
		model:   &gbm.Model{Task: dataset.Regression, W: wMat},
		useSVD:  useSVD,
		maxRank: maxRank,
		caches:  make([]*iterCache, nCaches),
		dvecs:   make([][]float64, nCaches),
	}
	for t := int64(0); t < nCaches; t++ {
		lp.caches[t] = readCache(br)
		lp.dvecs[t] = br.floats()
	}
	if br.err != nil {
		return nil, br.err
	}
	return lp, nil
}

// WriteTo serializes the binary-logistic provenance cache.
func (lp *LogisticProvenance) WriteTo(w io.Writer) (int64, error) {
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.w.WriteString(persistMagic)
	bw.u64(persistVersion)
	bw.u64(fingerprint(lp.data))
	writeConfig(bw, lp.cfg)
	bw.bool(lp.useSVD)
	bw.i64(int64(lp.maxRank))
	bw.dense(lp.modelL.W)
	bw.dense(lp.modelExact.W)
	bw.i64(int64(len(lp.caches)))
	for t := range lp.caches {
		writeCache(bw, lp.caches[t])
		bw.floats(lp.dvecs[t])
		bw.floats(lp.aCoef[t])
		bw.floats(lp.bCoef[t])
	}
	if bw.err != nil {
		return 0, bw.err
	}
	return 0, bw.w.Flush()
}

// LoadLogisticProvenance reads a cache written by WriteTo. The linearizer is
// only needed for future captures, not updates, so it is not persisted.
func LoadLogisticProvenance(r io.Reader, d *dataset.Dataset) (*LogisticProvenance, error) {
	br := &binReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	if v := br.u64(); v != persistVersion {
		return nil, fmt.Errorf("core: unsupported version %d", v)
	}
	if fp := br.u64(); fp != fingerprint(d) {
		return nil, fmt.Errorf("core: cache fingerprint does not match dataset")
	}
	cfg := readConfig(br)
	useSVD := br.bool()
	maxRank := int(br.i64())
	wL := br.dense()
	wExact := br.dense()
	nCaches := br.i64()
	if br.err != nil {
		return nil, br.err
	}
	if nCaches < 0 || int(nCaches) != cfg.Iterations {
		return nil, fmt.Errorf("core: cache count %d does not match iterations %d", nCaches, cfg.Iterations)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		return nil, err
	}
	lp := &LogisticProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		modelL:     &gbm.Model{Task: dataset.BinaryClassification, W: wL},
		modelExact: &gbm.Model{Task: dataset.BinaryClassification, W: wExact},
		useSVD:     useSVD,
		maxRank:    maxRank,
		caches:     make([]*iterCache, nCaches),
		dvecs:      make([][]float64, nCaches),
		aCoef:      make([][]float64, nCaches),
		bCoef:      make([][]float64, nCaches),
	}
	for t := int64(0); t < nCaches; t++ {
		lp.caches[t] = readCache(br)
		lp.dvecs[t] = br.floats()
		lp.aCoef[t] = br.floats()
		lp.bCoef[t] = br.floats()
	}
	if br.err != nil {
		return nil, br.err
	}
	return lp, nil
}
