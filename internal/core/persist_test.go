package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
)

func TestLinearProvenanceRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.02, BatchSize: 20, Iterations: 60, Seed: 201}
	d, sched := linearSetup(t, 100, 6, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLinearProvenance(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(100, 9, 202)
	want, err := lp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded cache update differs by %v", dist)
	}
	if dist := l2dist(loaded.Model(), lp.Model()); dist != 0 {
		t.Fatalf("loaded Minit differs by %v", dist)
	}
}

func TestLinearProvenanceRoundTripSVD(t *testing.T) {
	cfg := gbm.Config{Eta: 0.005, Lambda: 0.02, BatchSize: 10, Iterations: 40, Seed: 203}
	d, sched := linearSetup(t, 60, 20, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeSVD})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLinearProvenance(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.UsesSVD() || loaded.MaxRank() != lp.MaxRank() {
		t.Fatal("SVD metadata not preserved")
	}
	removed := pickRemoved(60, 4, 204)
	want, _ := lp.Update(removed)
	got, _ := loaded.Update(removed)
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded SVD cache update differs by %v", dist)
	}
}

func TestLogisticProvenanceRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 25, Iterations: 80, Seed: 205}
	d, sched := logisticSetup(t, 120, 5, cfg)
	lp, err := CaptureLogistic(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLogisticProvenance(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(120, 7, 206)
	want, _ := lp.Update(removed)
	got, _ := loaded.Update(removed)
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded logistic cache update differs by %v", dist)
	}
	if dist := l2dist(loaded.LinearizedModel(), lp.LinearizedModel()); dist != 0 {
		t.Fatal("linearized model not preserved")
	}
}

func TestMultinomialProvenanceRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.02, Lambda: 0.01, BatchSize: 30, Iterations: 40, Seed: 209}
	d, err := dataset.GenerateMulticlass("mc-persist", 150, 6, 3, 2.0, 33)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CaptureMultinomial(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMultinomialProvenance(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(150, 8, 210)
	want, err := mp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded multinomial cache update differs by %v", dist)
	}
	if dist := l2dist(loaded.LinearizedModel(), mp.LinearizedModel()); dist != 0 {
		t.Fatal("linearized model not preserved")
	}
	if dist := l2dist(loaded.Model(), mp.Model()); dist != 0 {
		t.Fatal("exact model not preserved")
	}
	// Wrong class count fails closed.
	wrong := *d
	wrong.Classes = 4
	var buf2 bytes.Buffer
	if _, err := mp.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMultinomialProvenance(&buf2, &wrong); err == nil {
		t.Fatal("expected class-count/fingerprint mismatch")
	}
}

func TestSparseLogisticProvenanceRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.1, BatchSize: 25, Iterations: 50, Seed: 211}
	d, err := dataset.GenerateSparseBinary("sp-persist", 120, 300, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := CaptureLogisticSparse(d, cfg, sched, testLin)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSparseLogisticProvenance(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(120, 6, 212)
	want, err := sp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded sparse cache update differs by %v", dist)
	}
	// A different sparse dataset is rejected by fingerprint.
	other, err := dataset.GenerateSparseBinary("sp-other", 120, 300, 8, 44)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := sp.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSparseLogisticProvenance(&buf2, other); err == nil {
		t.Fatal("expected sparse fingerprint mismatch")
	}
}

func TestLoadRejectsWrongDataset(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.02, BatchSize: 10, Iterations: 20, Seed: 207}
	d, sched := linearSetup(t, 50, 4, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.GenerateRegression("other", 50, 4, 0.05, 999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinearProvenance(&buf, other); err == nil {
		t.Fatal("expected fingerprint mismatch error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	d, err := dataset.GenerateRegression("g", 20, 3, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinearProvenance(bytes.NewReader([]byte("not a cache")), d); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := LoadLinearProvenance(bytes.NewReader(nil), d); err == nil {
		t.Fatal("expected EOF error")
	}
	if _, err := LoadLogisticProvenance(bytes.NewReader([]byte("XXXXjunkjunk")), d); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.02, BatchSize: 10, Iterations: 20, Seed: 208}
	d, sched := linearSetup(t, 40, 4, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadLinearProvenance(bytes.NewReader(half), d); err == nil {
		t.Fatal("expected truncation error")
	}
}
