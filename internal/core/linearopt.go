package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// LinearOpt holds the offline state of PrIU-opt for linear regression
// (Sec 5.2): the GD approximation replaces the mini-batch sums with the
// full-data matrices M = XᵀX and N = XᵀY, eigendecomposed once offline;
// the online update then only (a) incrementally updates the eigenvalues for
// the removed rows (Eq 18, Ning et al.) and (b) rolls the τ iterations as
// scalar recurrences in the eigenbasis (Eq 17) — O(min{Δn,m}·m²) + O(τm).
type LinearOpt struct {
	cfg  gbm.Config
	data *dataset.Dataset

	eig   *mat.Eigen // eigendecomposition of M = XᵀX (Q orthogonal)
	n     []float64  // N = XᵀY
	model *gbm.Model // GD-approximation model over the full dataset
}

// NewLinearOpt performs the offline phase of PrIU-opt: M, N and the
// eigendecomposition of M.
func NewLinearOpt(d *dataset.Dataset, cfg gbm.Config) (*LinearOpt, error) {
	lo, err := newLinearOptState(d, cfg)
	if err != nil {
		return nil, err
	}
	// The no-removal update is the GD approximation of Minit over the full
	// data — cheap (O(τm + m²)) and it gives the family a uniform Model().
	model, err := lo.Update(nil)
	if err != nil {
		return nil, err
	}
	lo.model = model
	return lo, nil
}

// newLinearOptState builds the eigen state (M = XᵀX eigendecomposed, N = XᵀY)
// without the initial model — shared by capture and snapshot restore, which
// rebuilds this cheap state from the dataset instead of serializing it.
func newLinearOptState(d *dataset.Dataset, cfg gbm.Config) (*LinearOpt, error) {
	if err := cfg.Validate(d.N()); err != nil {
		return nil, err
	}
	if d.Task != dataset.Regression {
		return nil, fmt.Errorf("core: NewLinearOpt requires a regression dataset, got %v", d.Task)
	}
	m := d.X.Gram()
	eig, err := mat.NewEigenSym(m)
	if err != nil {
		return nil, err
	}
	return &LinearOpt{cfg: cfg, data: d, eig: eig, n: d.X.MulVecT(d.Y)}, nil
}

// Model returns the GD-approximation model trained over the full dataset
// (Sec 5.2 replaces mini-batch SGD with full-batch GD offline).
func (lo *LinearOpt) Model() *gbm.Model { return lo.model }

// Update computes the updated model parameters after removing the given
// samples, using incremental eigenvalue updates and the closed iteration of
// Eq 17 with constant learning rate.
func (lo *LinearOpt) Update(removed []int) (*gbm.Model, error) {
	if lo.eig == nil {
		return nil, ErrNoCapture
	}
	rm, err := gbm.RemovalSet(lo.data.N(), removed)
	if err != nil {
		return nil, err
	}
	m := lo.data.M()
	dn := len(rm)
	nEff := lo.data.N() - dn
	if nEff <= 0 {
		return nil, fmt.Errorf("core: removal leaves no samples")
	}

	// Updated eigenvalues of M' = M − ΔXᵀΔX (Eq 18). Two cost regimes as in
	// the paper's complexity analysis O(min{Δn,m}·m²):
	// Δn < m → per-eigenvector low-rank products; otherwise form the m×m
	// ΔXᵀΔX once and take diagonal congruence entries.
	var cPrime []float64
	nPrime := mat.CloneVec(lo.n)
	if dn == 0 {
		cPrime = mat.CloneVec(lo.eig.Values)
	} else if dn < m {
		dx := mat.NewDense(dn, m)
		r := 0
		for i := 0; i < lo.data.N(); i++ {
			if rm[i] {
				copy(dx.Row(r), lo.data.X.Row(i))
				mat.Axpy(nPrime, -lo.data.Y[i], lo.data.X.Row(i))
				r++
			}
		}
		cPrime = lo.eig.UpdateValuesLowRank(dx)
	} else {
		delta := mat.NewDense(m, m)
		for i := 0; i < lo.data.N(); i++ {
			if !rm[i] {
				continue
			}
			xi := lo.data.X.Row(i)
			mat.AddOuter(delta, xi, xi, -1)
			mat.Axpy(nPrime, -lo.data.Y[i], xi)
		}
		cPrime = lo.eig.UpdateValues(delta)
	}

	// Roll Eq 17's per-eigencoordinate recurrence with w⁽⁰⁾ = 0:
	// z_i ← γ_i·z_i + β_i with γ_i = 1 − ηλ − 2η·c'_i/n' and
	// β_i = 2η/n'·(QᵀN')_i, for τ iterations — O(τm).
	eta, lambda := lo.cfg.Eta, lo.cfg.Lambda
	qtn := lo.eig.Q.MulVecT(nPrime)
	z := make([]float64, m)
	rollRecurrence(z, lo.cfg.Iterations, func(i int) (gamma, beta, z0 float64) {
		return 1 - eta*lambda - 2*eta*cPrime[i]/float64(nEff),
			2 * eta / float64(nEff) * qtn[i],
			0
	})
	w := lo.eig.Q.MulVec(z)
	return &gbm.Model{Task: dataset.Regression, W: mat.NewDenseData(1, m, w)}, nil
}

// FootprintBytes returns the offline state's memory: Q, the eigenvalues and
// N — O(m²), independent of τ (the space win of Sec 5.2).
func (lo *LinearOpt) FootprintBytes() int64 {
	r, c := lo.eig.Q.Dims()
	return int64(r)*int64(c)*8 + int64(len(lo.eig.Values))*8 + int64(len(lo.n))*8
}
