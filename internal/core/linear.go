package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
	"repro/internal/par"
)

// LinearProvenance holds the provenance cached during the initial training of
// a ridge linear-regression model (Sec 5.1): per iteration the unnormalized
// sums Σ_{i∈B(t)} xᵢxᵢᵀ (full or as SVD factors P⁽ᵗ⁾Vᵀ⁽ᵗ⁾) and
// Σ_{i∈B(t)} xᵢyᵢ, plus the batch schedule. The initial model Minit is
// trained alongside.
type LinearProvenance struct {
	cfg   gbm.Config
	sched *gbm.Schedule
	data  *dataset.Dataset
	model *gbm.Model

	useSVD bool
	caches []*iterCache // one per iteration: Σ xxᵀ
	dvecs  [][]float64  // one per iteration: Σ xy

	maxRank int
}

// CaptureLinear trains the initial linear-regression model on the full
// dataset while caching the provenance needed for later incremental updates.
// This is the offline phase; its cost is not part of reported update times.
func CaptureLinear(d *dataset.Dataset, cfg gbm.Config, sched *gbm.Schedule, opts Options) (*LinearProvenance, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if d.Task != dataset.Regression {
		return nil, fmt.Errorf("core: CaptureLinear requires a regression dataset, got %v", d.Task)
	}
	model, err := gbm.TrainLinear(d, cfg, sched, nil)
	if err != nil {
		return nil, err
	}
	m := d.M()
	useSVD := opts.Mode == ModeSVD || (opts.Mode == ModeAuto && m > cfg.BatchSize)
	lp := &LinearProvenance{
		cfg:    cfg,
		sched:  sched,
		data:   d,
		model:  model,
		useSVD: useSVD,
		caches: make([]*iterCache, cfg.Iterations),
		dvecs:  make([][]float64, cfg.Iterations),
	}
	eps := opts.epsilon()
	// Linear capture has no cross-iteration state: each iteration reads only
	// its scheduled batch and commits into its own caches[t]/dvecs[t] slot, so
	// the loop fans out on the pool with per-chunk row scratch. Slot commits
	// are index-addressed and the per-iteration arithmetic is worker-count
	// independent, so the stored provenance is bitwise identical at any pool
	// size.
	errs := make([]error, cfg.Iterations)
	par.For(cfg.Iterations, par.Grain(cfg.BatchSize*m), func(lo, hi int) {
		rows := make([][]float64, 0, cfg.BatchSize)
		for t := lo; t < hi; t++ {
			batch := sched.Batch(t)
			rows = rows[:0]
			dv := make([]float64, m)
			for _, i := range batch {
				xi := d.X.Row(i)
				rows = append(rows, xi)
				mat.Axpy(dv, d.Y[i], xi)
			}
			c, err := weightedGramCache(rows, nil, m, useSVD, eps)
			if err != nil {
				errs[t] = err
				return
			}
			lp.caches[t] = c
			lp.dvecs[t] = dv
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, c := range lp.caches {
		if r := c.rank(); r > lp.maxRank {
			lp.maxRank = r
		}
	}
	return lp, nil
}

// Model returns the initial model Minit trained during capture.
func (lp *LinearProvenance) Model() *gbm.Model { return lp.model }

// UsesSVD reports whether the caches store truncated SVD factors.
func (lp *LinearProvenance) UsesSVD() bool { return lp.useSVD }

// MaxRank returns the largest truncation rank across iterations (m in full
// mode).
func (lp *LinearProvenance) MaxRank() int { return lp.maxRank }

// Update incrementally computes the model that training without the removed
// samples would (approximately) produce, by zeroing out their provenance:
// Eq 13 (full caches) / Eq 14 (SVD factors). Cost per iteration is
// O(rm + ΔB·m) where ΔB is the number of removed samples in the batch.
func (lp *LinearProvenance) Update(removed []int) (*gbm.Model, error) {
	if lp.caches == nil {
		return nil, ErrNoCapture
	}
	rm, err := gbm.RemovalSet(lp.data.N(), removed)
	if err != nil {
		return nil, err
	}
	mask := removalMask(lp.data.N(), rm)
	m := lp.data.M()
	w := make([]float64, m)
	gw := make([]float64, m)
	scratch := make([]float64, lp.scratchLen())
	eta, lambda := lp.cfg.Eta, lp.cfg.Lambda
	for t := 0; t < lp.cfg.Iterations; t++ {
		batch := lp.sched.Batch(t)
		// gw = (Σ_B xxᵀ)·w from the cache.
		lp.caches[t].apply(gw, w, scratch)
		// Subtract removed contributions: Δ(xxᵀw) and Δ(xy) directly from the
		// data rows (the matrix-vector associativity trick of Sec 5.1).
		bU := len(batch)
		var dGW, dDV []float64 // lazily allocated only if something is removed
		for _, i := range batch {
			if mask == nil || !mask[i] {
				continue
			}
			bU--
			if dGW == nil {
				dGW = scratch[:m]
				dDV = make([]float64, m)
				mat.ZeroVec(dGW)
			}
			xi := lp.data.X.Row(i)
			mat.Axpy(dGW, mat.Dot(xi, w), xi)
			mat.Axpy(dDV, lp.data.Y[i], xi)
		}
		decay := 1 - eta*lambda
		if bU == 0 {
			mat.ScaleVec(w, decay)
			continue
		}
		f := 2 * eta / float64(bU)
		dv := lp.dvecs[t]
		if dGW == nil {
			for j := range w {
				w[j] = decay*w[j] - f*gw[j] + f*dv[j]
			}
		} else {
			for j := range w {
				w[j] = decay*w[j] - f*(gw[j]-dGW[j]) + f*(dv[j]-dDV[j])
			}
		}
	}
	return &gbm.Model{Task: dataset.Regression, W: mat.NewDenseData(1, m, w)}, nil
}

// scratchLen returns a buffer length covering both the SVD intermediate
// (length max rank) and the removed-contribution accumulator (length m).
func (lp *LinearProvenance) scratchLen() int {
	m := lp.data.M()
	if lp.maxRank > m {
		return lp.maxRank
	}
	return m
}

// FootprintBytes returns the memory occupied by the cached provenance
// (Table 3 accounting): iteration matrices, Σxy vectors and the batch lists.
func (lp *LinearProvenance) FootprintBytes() int64 {
	var total int64
	for _, c := range lp.caches {
		total += c.footprint()
	}
	for _, dv := range lp.dvecs {
		total += int64(len(dv)) * 8
	}
	total += lp.sched.FootprintBytes()
	return total
}
