package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
	"repro/internal/mat"
)

// testLin is a coarse linearizer (fast to build) still accurate to ~1e-9.
var testLin = mustLin()

func mustLin() *interp.Linearizer {
	l, err := interp.NewLinearizer(interp.F, interp.DefaultBound, 100_000)
	if err != nil {
		panic(err)
	}
	return l
}

func pickRemoved(n, k int, seed int64) []int {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

func cosine(a, b *gbm.Model) float64 {
	return mat.CosineSimilarity(a.Vec(), b.Vec())
}

func l2dist(a, b *gbm.Model) float64 {
	return mat.Distance(a.Vec(), b.Vec())
}

// --- Linear regression ---

func linearSetup(t *testing.T, n, m int, cfg gbm.Config) (*dataset.Dataset, *gbm.Schedule) {
	t.Helper()
	d, err := dataset.GenerateRegression("lin", n, m, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gbm.NewSchedule(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, sched
}

func TestLinearPrIUExactMatchFullMode(t *testing.T) {
	// With full (untruncated) caches, PrIU's update is algebraically the same
	// recurrence as BaseL retraining on the shared schedule — results must
	// agree to round-off.
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.01, BatchSize: 40, Iterations: 150, Seed: 2}
	d, sched := linearSetup(t, 200, 8, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(200, 20, 3)
	rm, _ := gbm.RemovalSet(200, removed)
	want, err := gbm.TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist > 1e-10 {
		t.Fatalf("PrIU(full) differs from BaseL by %v", dist)
	}
}

func TestLinearPrIUExactMatchNoRemoval(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.01, BatchSize: 25, Iterations: 100, Seed: 5}
	d, sched := linearSetup(t, 120, 5, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, lp.Model()); dist > 1e-10 {
		t.Fatalf("PrIU with empty removal differs from Minit by %v", dist)
	}
}

func TestLinearPrIUSVDCloseToBaseL(t *testing.T) {
	// SVD truncation introduces the Theorem 6 O(ε) deviation; with ε=0.01 the
	// updated model must still be very close to retraining.
	cfg := gbm.Config{Eta: 0.005, Lambda: 0.01, BatchSize: 20, Iterations: 200, Seed: 7}
	d, sched := linearSetup(t, 150, 30, cfg) // m > B triggers the SVD regime
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeAuto, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !lp.UsesSVD() {
		t.Fatal("expected auto mode to pick SVD for m > B")
	}
	if lp.MaxRank() > 20 {
		t.Fatalf("rank %d should not exceed batch size", lp.MaxRank())
	}
	removed := pickRemoved(150, 3, 8)
	rm, _ := gbm.RemovalSet(150, removed)
	want, err := gbm.TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.999 {
		t.Fatalf("PrIU(SVD) cosine %v vs BaseL", cos)
	}
	if dist := l2dist(got, want); dist > 0.05*(1+mat.Norm2(want.Vec())) {
		t.Fatalf("PrIU(SVD) L2 distance %v", dist)
	}
}

func TestLinearPrIUSVDZeroEpsilonIsExactRankWise(t *testing.T) {
	// ε→0 keeps every positive eigenvalue: reconstruction is exact up to
	// round-off, so PrIU must agree with BaseL tightly even in SVD mode.
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.02, BatchSize: 10, Iterations: 80, Seed: 9}
	d, sched := linearSetup(t, 60, 16, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeSVD, Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(60, 6, 10)
	rm, _ := gbm.RemovalSet(60, removed)
	want, err := gbm.TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist > 1e-6 {
		t.Fatalf("PrIU(SVD, ε≈0) differs from BaseL by %v", dist)
	}
}

func TestLinearOptCloseToBaseL(t *testing.T) {
	// PrIU-opt's GD approximation: statistically equivalent parameters
	// (Sec 5.2). Check cosine similarity and relative distance, plus the
	// Theorem 7 trend: smaller removals → smaller deviation.
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 50, Iterations: 800, Seed: 11}
	d, sched := linearSetup(t, 300, 6, cfg)
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 15} {
		removed := pickRemoved(300, k, int64(k))
		rm, _ := gbm.RemovalSet(300, removed)
		want, err := gbm.TrainLinear(d, cfg, sched, rm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lo.Update(removed)
		if err != nil {
			t.Fatal(err)
		}
		if cos := cosine(got, want); cos < 0.995 {
			t.Fatalf("k=%d: PrIU-opt cosine %v", k, cos)
		}
	}
}

func TestLinearOptLargeRemovalUsesDensePath(t *testing.T) {
	// Δn ≥ m exercises the O(m³) congruence branch.
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 50, Iterations: 500, Seed: 13}
	d, sched := linearSetup(t, 200, 4, cfg)
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(200, 40, 14) // Δn=40 > m=4
	rm, _ := gbm.RemovalSet(200, removed)
	want, err := gbm.TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lo.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.99 {
		t.Fatalf("PrIU-opt (dense path) cosine %v", cos)
	}
}

func TestLinearOptEmptyRemoval(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 30, Iterations: 400, Seed: 15}
	d, sched := linearSetup(t, 100, 5, cfg)
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := gbm.TrainLinear(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lo.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, base); cos < 0.999 {
		t.Fatalf("PrIU-opt no-removal cosine %v vs GBM training", cos)
	}
}

// --- Binary logistic regression ---

func logisticSetup(t *testing.T, n, m int, cfg gbm.Config) (*dataset.Dataset, *gbm.Schedule) {
	t.Helper()
	d, err := dataset.GenerateBinary("logi", n, m, 1.2, 21)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gbm.NewSchedule(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, sched
}

func TestLogisticLinearizedModelCloseToExact(t *testing.T) {
	// Theorem 4: ‖w − w_L‖ = O((Δx)²).
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.01, BatchSize: 32, Iterations: 300, Seed: 22}
	d, sched := logisticSetup(t, 200, 6, cfg)
	lp, err := CaptureLogistic(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	dist := l2dist(lp.LinearizedModel(), lp.Model())
	if dist > 1e-4 {
		t.Fatalf("‖w − w_L‖ = %v, linearization too lossy", dist)
	}
}

func TestLogisticPrIUCloseToBaseL(t *testing.T) {
	// Theorem 5/8: the incrementally updated w_LU is close to the retrained
	// w_RU, with cosine ≈ 1 (the paper's Table 4 criterion).
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.01, BatchSize: 32, Iterations: 300, Seed: 23}
	d, sched := logisticSetup(t, 200, 6, cfg)
	lp, err := CaptureLogistic(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 20} {
		removed := pickRemoved(200, k, int64(30+k))
		rm, _ := gbm.RemovalSet(200, removed)
		want, err := gbm.TrainLogistic(d, cfg, sched, rm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lp.Update(removed)
		if err != nil {
			t.Fatal(err)
		}
		if cos := cosine(got, want); cos < 0.999 {
			t.Fatalf("k=%d: PrIU logistic cosine %v", k, cos)
		}
		relDist := l2dist(got, want) / (1 + mat.Norm2(want.Vec()))
		if relDist > 0.02 {
			t.Fatalf("k=%d: PrIU logistic relative distance %v", k, relDist)
		}
	}
}

func TestLogisticPrIUSVDMode(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 16, Iterations: 200, Seed: 25}
	d, sched := logisticSetup(t, 120, 24, cfg) // m > B → SVD regime
	lp, err := CaptureLogistic(d, cfg, sched, testLin, Options{Mode: ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !lp.UsesSVD() {
		t.Fatal("expected SVD regime")
	}
	removed := pickRemoved(120, 4, 26)
	rm, _ := gbm.RemovalSet(120, removed)
	want, err := gbm.TrainLogistic(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.995 {
		t.Fatalf("PrIU logistic (SVD) cosine %v", cos)
	}
}

func TestLogisticOptCloseToBaseL(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 32, Iterations: 400, Seed: 27}
	d, sched := logisticSetup(t, 200, 6, cfg)
	lo, err := CaptureLogisticOpt(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Ts() != 280 {
		t.Fatalf("ts = %d, want 0.7·400", lo.Ts())
	}
	removed := pickRemoved(200, 4, 28)
	rm, _ := gbm.RemovalSet(200, removed)
	want, err := gbm.TrainLogistic(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lo.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.99 {
		t.Fatalf("PrIU-opt logistic cosine %v", cos)
	}
	// Predictive agreement on the training features.
	pg := got.PredictBinary(d.X)
	pw := want.PredictBinary(d.X)
	agree := 0
	for i := range pg {
		if pg[i] == pw[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pg)); frac < 0.97 {
		t.Fatalf("prediction agreement %v", frac)
	}
}

func TestLogisticOptCustomFraction(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 20, Iterations: 100, Seed: 29}
	d, sched := logisticSetup(t, 80, 4, cfg)
	lo, err := CaptureLogisticOpt(d, cfg, sched, testLin, Options{Mode: ModeFull, EarlyTerminationFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Ts() != 50 {
		t.Fatalf("ts = %d, want 50", lo.Ts())
	}
	if _, err := lo.Update([]int{0, 7}); err != nil {
		t.Fatal(err)
	}
}

// --- Multinomial logistic regression ---

func TestMultinomialPrIUCloseToBaseL(t *testing.T) {
	d, err := dataset.GenerateMulticlass("mc", 240, 8, 3, 2.5, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 40, Iterations: 250, Seed: 32}
	sched, err := gbm.NewSchedule(240, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CaptureMultinomial(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	// Linearized multinomial should already be close to the exact model.
	if cos := cosine(mp.LinearizedModel(), mp.Model()); cos < 0.99 {
		t.Fatalf("linearized multinomial cosine %v vs exact", cos)
	}
	removed := pickRemoved(240, 6, 33)
	rm, _ := gbm.RemovalSet(240, removed)
	want, err := gbm.TrainMultinomial(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.99 {
		t.Fatalf("PrIU multinomial cosine %v", cos)
	}
	// Classification agreement.
	pg := got.PredictMulticlass(d.X)
	pw := want.PredictMulticlass(d.X)
	agree := 0
	for i := range pg {
		if pg[i] == pw[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pg)); frac < 0.95 {
		t.Fatalf("multiclass prediction agreement %v", frac)
	}
}

func TestMultinomialRejectsWrongTask(t *testing.T) {
	d, err := dataset.GenerateBinary("wrong", 50, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 10, Iterations: 10, Seed: 1}
	sched, err := gbm.NewSchedule(50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CaptureMultinomial(d, cfg, sched, Options{}); err == nil {
		t.Fatal("expected task error")
	}
	if _, err := CaptureLogistic(d, cfg, sched, testLin, Options{}); err != nil {
		t.Fatalf("binary capture should work: %v", err)
	}
}

// --- Sparse logistic ---

func TestSparsePrIUCloseToBaseL(t *testing.T) {
	d, err := dataset.GenerateSparseBinary("sp", 150, 400, 10, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.1, Lambda: 0.01, BatchSize: 30, Iterations: 200, Seed: 42}
	sched, err := gbm.NewSchedule(150, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := CaptureLogisticSparse(d, cfg, sched, testLin)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(sp.LinearizedModel(), sp.Model()); cos < 0.999 {
		t.Fatalf("sparse linearized cosine %v", cos)
	}
	removed := pickRemoved(150, 5, 43)
	rm, _ := gbm.RemovalSet(150, removed)
	want, err := gbm.TrainLogisticSparse(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := cosine(got, want); cos < 0.999 {
		t.Fatalf("sparse PrIU cosine %v", cos)
	}
	if sp.FootprintBytes() <= 0 {
		t.Fatal("footprint must be positive")
	}
}

// --- Shared machinery ---

func TestWeightedGramCacheFullVsSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := 12
	rows := make([][]float64, 8)
	weights := make([]float64, 8)
	for i := range rows {
		rows[i] = make([]float64, m)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
		weights[i] = -rng.Float64() // logistic-style negative weights
	}
	full, err := weightedGramCache(rows, weights, m, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	svd, err := weightedGramCache(rows, weights, m, true, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, m)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	a := make([]float64, m)
	b := make([]float64, m)
	scratch := make([]float64, m)
	full.apply(a, w, scratch)
	svd.apply(b, w, scratch)
	if mat.Distance(a, b) > 1e-8*(1+mat.Norm2(a)) {
		t.Fatalf("full vs SVD apply differ by %v", mat.Distance(a, b))
	}
	if svd.rank() > 8 {
		t.Fatalf("rank %d exceeds row count", svd.rank())
	}
}

func TestWeightedGramCacheZeroWeights(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	weights := []float64{0, 0}
	c, err := weightedGramCache(rows, weights, 2, true, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 1}
	dst := make([]float64, 2)
	scratch := make([]float64, 2)
	c.apply(dst, w, scratch)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("zero-weight cache apply = %v", dst)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Epsilon: -0.1},
		{Epsilon: 1},
		{EarlyTerminationFraction: 1.5},
		{EarlyTerminationFraction: -0.1},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Fatalf("bad options %d validated", i)
		}
	}
	if (Options{}).epsilon() != 0.01 {
		t.Fatal("default epsilon")
	}
	if (Options{}).earlyTermFrac() != 0.7 {
		t.Fatal("default early-termination fraction")
	}
	if ModeAuto.String() != "auto" || ModeFull.String() != "full" || ModeSVD.String() != "svd" {
		t.Fatal("CacheMode.String")
	}
}

func TestUpdateRejectsBadRemovals(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.01, BatchSize: 10, Iterations: 20, Seed: 61}
	d, sched := linearSetup(t, 40, 4, cfg)
	lp, err := CaptureLinear(d, cfg, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lp.Update([]int{-1}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := lp.Update([]int{40}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestFootprintsPositiveAndOrdered(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.01, BatchSize: 10, Iterations: 50, Seed: 71}
	d, sched := linearSetup(t, 80, 6, cfg)
	lpFull, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lpFull.FootprintBytes() <= 0 || lo.FootprintBytes() <= 0 {
		t.Fatal("footprints must be positive")
	}
	// PrIU-opt caches O(m²) instead of O(τ·m²): much smaller here.
	if lo.FootprintBytes() >= lpFull.FootprintBytes() {
		t.Fatalf("PrIU-opt footprint %d should be below PrIU full %d",
			lo.FootprintBytes(), lpFull.FootprintBytes())
	}
}

func TestTheorem5ErrorScalesWithRemovalFraction(t *testing.T) {
	// ‖w_LU − w_RU‖ should grow with Δn/n (Theorem 5). Compare small vs
	// large deletion; the trend must hold.
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 32, Iterations: 200, Seed: 81}
	d, sched := logisticSetup(t, 200, 5, cfg)
	lp, err := CaptureLogistic(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	dist := func(k int) float64 {
		removed := pickRemoved(200, k, 82)
		rm, _ := gbm.RemovalSet(200, removed)
		want, err := gbm.TrainLogistic(d, cfg, sched, rm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lp.Update(removed)
		if err != nil {
			t.Fatal(err)
		}
		return l2dist(got, want)
	}
	small, large := dist(2), dist(60)
	if small > large+1e-9 && large > 1e-12 {
		t.Fatalf("deviation did not grow with removal size: %v vs %v", small, large)
	}
	if math.IsNaN(small) || math.IsNaN(large) {
		t.Fatal("NaN deviation")
	}
}
