package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
)

// The opt round trips assert bitwise equality: the loaders rebuild the
// eigenbases with capture's exact serial accumulation order, so at test sizes
// (below the parallel-kernel cutoffs) a restored updater must reproduce the
// original's output to the last bit.

func TestLinearOptRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.02, BatchSize: 20, Iterations: 60, Seed: 301}
	d, _ := linearSetup(t, 100, 6, cfg)
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lo.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLinearOpt(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(100, 9, 302)
	want, err := lo.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded linear-opt update differs by %v", dist)
	}
	if dist := l2dist(loaded.Model(), lo.Model()); dist != 0 {
		t.Fatalf("loaded linear-opt model differs by %v", dist)
	}
}

func TestLogisticOptRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 25, Iterations: 80, Seed: 303}
	d, err := dataset.GenerateBinary("plo", 120, 5, 0.8, 304)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gbm.NewSchedule(120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := interp.NewLinearizer(interp.F, interp.DefaultBound, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := CaptureLogisticOpt(d, cfg, sched, lin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lo.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLogisticOpt(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ts() != lo.Ts() {
		t.Fatalf("loaded ts %d, want %d", loaded.Ts(), lo.Ts())
	}
	removed := pickRemoved(120, 7, 305)
	want, err := lo.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded logistic-opt update differs by %v", dist)
	}
	if dist := l2dist(loaded.Model(), lo.Model()); dist != 0 {
		t.Fatalf("loaded logistic-opt model differs by %v", dist)
	}
}

func TestMultinomialOptRoundTrip(t *testing.T) {
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 30, Iterations: 60, Seed: 306}
	d, err := dataset.GenerateMulticlass("pmo", 150, 5, 3, 2.0, 307)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gbm.NewSchedule(150, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := CaptureMultinomialOpt(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mo.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMultinomialOpt(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(150, 8, 308)
	want, err := mo.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if dist := l2dist(got, want); dist != 0 {
		t.Fatalf("loaded multinomial-opt update differs by %v", dist)
	}
}

func TestLoadOptRejectsWrongStream(t *testing.T) {
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.02, BatchSize: 20, Iterations: 40, Seed: 309}
	d, sched := linearSetup(t, 80, 5, cfg)

	// A plain PrIU stream must not decode as an opt stream (distinct magic).
	lp, err := CaptureLinear(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if _, err := lp.WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinearOpt(bytes.NewReader(plain.Bytes()), d); err == nil {
		t.Fatal("LoadLinearOpt should reject a PrIU provenance stream")
	}

	// A linear-opt stream must be rejected against a different dataset.
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lo.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.GenerateRegression("plo-other", 80, 5, 0.05, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinearOpt(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("LoadLinearOpt should reject a fingerprint mismatch")
	}

	// Truncated opt streams fail closed.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadLinearOpt(bytes.NewReader(trunc), d); err == nil {
		t.Fatal("LoadLinearOpt should reject a truncated stream")
	}
}
