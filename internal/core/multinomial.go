package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
	"repro/internal/par"
)

// MultinomialProvenance is the multinomial-logistic analogue of
// LogisticProvenance. The paper linearizes the softmax with multi-dimensional
// piecewise interpolation [Weiser & Zarantonello]; this implementation uses
// per-class tangent-line linearization of the softmax probabilities (1-D in
// each class's own logit, coefficients frozen per iteration), which keeps the
// update rule in the exact shape PrIU needs:
//
//	wₖ ← (1−ηλ)wₖ − η/B·[ Σᵢ aₖᵢ·xᵢxᵢᵀ·wₖ + Σᵢ cₖᵢ·xᵢ ]
//
// with aₖᵢ = pₖ(1−pₖ) ≥ 0 and cₖᵢ = bₖᵢ − 1{yᵢ=k}, bₖᵢ = pₖ − aₖᵢ·zₖ
// (the substitution is documented in DESIGN.md). Per class k the caches are
// Cₖ⁽ᵗ⁾ = Σ aₖᵢxᵢxᵢᵀ and Dₖ⁽ᵗ⁾ = Σ cₖᵢxᵢ.
type MultinomialProvenance struct {
	cfg   gbm.Config
	sched *gbm.Schedule
	data  *dataset.Dataset

	modelL     *gbm.Model
	modelExact *gbm.Model

	useSVD bool
	q      int
	// caches[t][k] is Cₖ⁽ᵗ⁾; dvecs[t][k] is Dₖ⁽ᵗ⁾.
	caches [][]*iterCache
	dvecs  [][][]float64
	// aCoef[t][k*B+j], cCoef[t][k*B+j]: coefficients of batch member j for
	// class k at iteration t.
	aCoef, cCoef [][]float64

	maxRank int
}

// CaptureMultinomial trains the per-class linearized multinomial model over
// the full dataset, caching provenance for incremental updates.
func CaptureMultinomial(d *dataset.Dataset, cfg gbm.Config, sched *gbm.Schedule, opts Options) (*MultinomialProvenance, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if d.Task != dataset.MultiClassification {
		return nil, fmt.Errorf("core: CaptureMultinomial requires multiclass labels, got %v", d.Task)
	}
	if err := cfg.Validate(d.N()); err != nil {
		return nil, err
	}
	if sched == nil || sched.N() != d.N() || sched.Iterations() < cfg.Iterations {
		return nil, fmt.Errorf("core: schedule incompatible with dataset/config")
	}
	exact, err := gbm.TrainMultinomial(d, cfg, sched, nil)
	if err != nil {
		return nil, err
	}
	m, q := d.M(), d.Classes
	useSVD := opts.Mode == ModeSVD || (opts.Mode == ModeAuto && m > cfg.BatchSize)
	mp := &MultinomialProvenance{
		cfg:        cfg,
		sched:      sched,
		data:       d,
		modelExact: exact,
		useSVD:     useSVD,
		q:          q,
		caches:     make([][]*iterCache, cfg.Iterations),
		dvecs:      make([][][]float64, cfg.Iterations),
		aCoef:      make([][]float64, cfg.Iterations),
		cCoef:      make([][]float64, cfg.Iterations),
	}
	eps := opts.epsilon()
	w := mat.NewDense(q, m)
	rowBuf := make([][]float64, cfg.BatchSize)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		b := len(batch)
		rows := rowBuf[:b]
		av := make([]float64, q*b)
		cv := make([]float64, q*b)
		dvs := make([][]float64, q)
		for k := range dvs {
			dvs[k] = make([]float64, m)
		}
		// Phase 1: per-member softmax linearization. Each member writes its
		// own av/cv column, so the loop fans out with per-chunk logit/prob
		// scratch; the dvs folds stay serial in (j, k) order below so their
		// accumulation order is fixed.
		par.For(b, par.Grain(2*q*m), func(lo, hi int) {
			logits := make([]float64, q)
			probs := make([]float64, q)
			for j := lo; j < hi; j++ {
				i := batch[j]
				xi := d.X.Row(i)
				rows[j] = xi
				for k := 0; k < q; k++ {
					logits[k] = mat.Dot(w.Row(k), xi)
				}
				gbm.Softmax(probs, logits)
				yi := int(d.Y[i])
				for k := 0; k < q; k++ {
					a := probs[k] * (1 - probs[k])
					c := probs[k] - a*logits[k]
					if k == yi {
						c -= 1
					}
					av[k*b+j] = a
					cv[k*b+j] = c
				}
			}
		})
		for j, i := range batch {
			xi := d.X.Row(i)
			for k := 0; k < q; k++ {
				mat.Axpy(dvs[k], cv[k*b+j], xi)
			}
		}
		// Phase 2: per-class cache build — classes are independent and each
		// writes only its own ics[k] slot.
		ics := make([]*iterCache, q)
		errs := make([]error, q)
		par.For(q, 1, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				ic, err := weightedGramCache(rows, av[k*b:(k+1)*b], m, useSVD, eps)
				if err != nil {
					errs[k] = err
					return
				}
				ics[k] = ic
			}
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, ic := range ics {
			if r := ic.rank(); r > mp.maxRank {
				mp.maxRank = r
			}
		}
		mp.caches[t] = ics
		mp.dvecs[t] = dvs
		mp.aCoef[t] = av
		mp.cCoef[t] = cv
		// Phase 3: advance the linearized model — each class updates its own
		// row of w with private scratch.
		decay := 1 - cfg.Eta*cfg.Lambda
		f := cfg.Eta / float64(b)
		par.For(q, 1, func(klo, khi int) {
			cw := make([]float64, m)
			scratch := make([]float64, m)
			for k := klo; k < khi; k++ {
				ics[k].apply(cw, w.Row(k), scratch)
				wk := w.Row(k)
				dv := dvs[k]
				for j := range wk {
					wk[j] = decay*wk[j] - f*(cw[j]+dv[j])
				}
			}
		})
	}
	mp.modelL = &gbm.Model{Task: dataset.MultiClassification, W: w}
	return mp, nil
}

// Model returns the standard-rule initial model Minit.
func (mp *MultinomialProvenance) Model() *gbm.Model { return mp.modelExact }

// LinearizedModel returns the model trained with the linearized rule.
func (mp *MultinomialProvenance) LinearizedModel() *gbm.Model { return mp.modelL }

// UsesSVD reports whether the caches store truncated SVD factors.
func (mp *MultinomialProvenance) UsesSVD() bool { return mp.useSVD }

// MaxRank returns the largest truncation rank across iterations and classes
// (m in full mode).
func (mp *MultinomialProvenance) MaxRank() int { return mp.maxRank }

// Update incrementally computes the updated q×m parameter matrix after
// removing the given samples, zeroing out their per-class contributions.
func (mp *MultinomialProvenance) Update(removed []int) (*gbm.Model, error) {
	if mp.caches == nil {
		return nil, ErrNoCapture
	}
	rm, err := gbm.RemovalSet(mp.data.N(), removed)
	if err != nil {
		return nil, err
	}
	m, q := mp.data.M(), mp.q
	w := mat.NewDense(q, m)
	mp.updateInto(w, rm, 0, mp.cfg.Iterations)
	return &gbm.Model{Task: dataset.MultiClassification, W: w}, nil
}

// updateInto rolls the per-class incremental update from iteration t0 to
// tEnd on w in place. Classes evolve independently — the only cross-class
// inputs are the per-iteration surviving batch sizes, which are precomputed —
// so classes run in parallel, each rolling all its iterations with private
// scratch. The restructure preserves the serial per-class arithmetic order,
// and the nested kernels (including the SVD caches' transpose mat-vec, which
// reduces via par.MapReduceDet) are bitwise-deterministic at any worker
// count, so the update is too.
func (mp *MultinomialProvenance) updateInto(w *mat.Dense, rm map[int]bool, t0, tEnd int) {
	mask := removalMask(mp.data.N(), rm)
	m, q := mp.data.M(), mp.q
	eta, lambda := mp.cfg.Eta, mp.cfg.Lambda
	decay := 1 - eta*lambda
	bUs := make([]int, tEnd-t0)
	for t := t0; t < tEnd; t++ {
		batch := mp.sched.Batch(t)
		bU := len(batch)
		if mask != nil {
			for _, i := range batch {
				if mask[i] {
					bU--
				}
			}
		}
		bUs[t-t0] = bU
	}
	par.For(q, 1, func(klo, khi int) {
		cw := make([]float64, m)
		scratch := make([]float64, m)
		dGW := make([]float64, m)
		dDV := make([]float64, m)
		for k := klo; k < khi; k++ {
			wk := w.Row(k)
			for t := t0; t < tEnd; t++ {
				bU := bUs[t-t0]
				if bU == 0 {
					mat.ScaleVec(wk, decay)
					continue
				}
				batch := mp.sched.Batch(t)
				b := len(batch)
				mp.caches[t][k].apply(cw, wk, scratch)
				removedAny := false
				for j, i := range batch {
					if mask == nil || !mask[i] {
						continue
					}
					if !removedAny {
						removedAny = true
						mat.ZeroVec(dGW)
						mat.ZeroVec(dDV)
					}
					xi := mp.data.X.Row(i)
					mat.Axpy(dGW, mp.aCoef[t][k*b+j]*mat.Dot(xi, wk), xi)
					mat.Axpy(dDV, mp.cCoef[t][k*b+j], xi)
				}
				f := eta / float64(bU)
				dv := mp.dvecs[t][k]
				if !removedAny {
					for j := range wk {
						wk[j] = decay*wk[j] - f*(cw[j]+dv[j])
					}
				} else {
					for j := range wk {
						wk[j] = decay*wk[j] - f*(cw[j]-dGW[j]+dv[j]-dDV[j])
					}
				}
			}
		}
	})
}

// FootprintBytes returns the memory occupied by the cached provenance.
func (mp *MultinomialProvenance) FootprintBytes() int64 {
	var total int64
	for t := range mp.caches {
		for _, c := range mp.caches[t] {
			total += c.footprint()
		}
		for _, dv := range mp.dvecs[t] {
			total += int64(len(dv)) * 8
		}
		total += int64(len(mp.aCoef[t]))*8 + int64(len(mp.cCoef[t]))*8
	}
	total += mp.sched.FootprintBytes()
	return total
}
