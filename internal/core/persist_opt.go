package core

import (
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// PrIU-opt persistence. The opt families keep eigendecompositions that would
// roughly double the snapshot size but are cheap to rebuild (one NewEigenSym
// per class over an m×m matrix), so the streams persist only the model and
// the non-rebuildable provenance — the stabilized linearization coefficients
// and, for logistic/multinomial, the embedded ts-truncated PrIU capture — and
// the loaders reconstruct the eigenbases with the exact serial loops capture
// used. For operand sizes below the parallel-kernel cutoffs the rebuild is
// bitwise-deterministic, so a restored updater reproduces the original's
// Update output exactly.
//
// Each family gets its own magic so a stream can never be decoded by the
// wrong loader: "PRLO" (linear-opt), "PRBO" (logistic-opt), "PRMO"
// (multinomial-opt).

const (
	linearOptMagic      = "PRLO"
	logisticOptMagic    = "PRBO"
	multinomialOptMagic = "PRMO"
)

// writeOptHeader emits the shared opt-stream prefix: magic, version, dataset
// fingerprint and the full-horizon training config.
func writeOptHeader(bw *binio.Writer, magic string, fp uint64, cfg gbm.Config) {
	bw.Bytes([]byte(magic))
	bw.U64(persistVersion)
	bw.U64(fp)
	writeConfig(bw, cfg)
}

// readOptHeader consumes and verifies the prefix written by writeOptHeader.
func readOptHeader(r io.Reader, magic string, wantFP uint64) (*binio.Reader, gbm.Config, error) {
	br := binio.NewReader(r)
	if err := br.Magic(magic); err != nil {
		return nil, gbm.Config{}, fmt.Errorf("core: %w", err)
	}
	if v := br.U64(); v != persistVersion {
		return nil, gbm.Config{}, fmt.Errorf("core: unsupported version %d", v)
	}
	if fp := br.U64(); fp != wantFP {
		return nil, gbm.Config{}, fmt.Errorf("core: cache fingerprint does not match dataset")
	}
	cfg := readConfig(br)
	if br.Err != nil {
		return nil, gbm.Config{}, br.Err
	}
	if cfg.Iterations < 1 || cfg.Iterations > maxPersistIterations {
		return nil, gbm.Config{}, fmt.Errorf("core: persisted iteration count %d out of bounds", cfg.Iterations)
	}
	return br, cfg, nil
}

// WriteTo serializes the PrIU-opt linear state: only the config and the
// GD-approximation model. The eigendecomposition of M = XᵀX and the vector
// N = XᵀY are rebuilt from the dataset on load.
func (lo *LinearOpt) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	writeOptHeader(bw, linearOptMagic, fingerprint(lo.data), lo.cfg)
	writeDense(bw, lo.model.W)
	return 0, bw.Flush()
}

// LoadLinearOpt reads a stream written by LinearOpt.WriteTo and re-binds it
// to the dataset it was captured from (verified by fingerprint), redoing the
// offline eigendecomposition.
func LoadLinearOpt(r io.Reader, d *dataset.Dataset) (*LinearOpt, error) {
	br, cfg, err := readOptHeader(r, linearOptMagic, fingerprint(d))
	if err != nil {
		return nil, err
	}
	wMat := readDense(br)
	if br.Err != nil {
		return nil, br.Err
	}
	if wMat == nil {
		return nil, fmt.Errorf("core: persisted linear-opt model missing")
	}
	if wr, wc := wMat.Dims(); wr != 1 || wc != d.M() {
		return nil, fmt.Errorf("core: persisted linear-opt model is %dx%d, want 1x%d", wr, wc, d.M())
	}
	lo, err := newLinearOptState(d, cfg)
	if err != nil {
		return nil, err
	}
	lo.model = &gbm.Model{Task: dataset.Regression, W: wMat}
	return lo, nil
}

// WriteTo serializes the PrIU-opt logistic state: the early-termination point,
// the stabilized linearization coefficients and D*, followed by the embedded
// ts-truncated PrIU capture. The eigendecomposition of C* is rebuilt from the
// coefficients on load.
func (lo *LogisticOpt) WriteTo(w io.Writer) (int64, error) {
	d := lo.prov.data
	fullCfg := lo.prov.cfg
	fullCfg.Iterations = lo.fullIterations
	bw := binio.NewWriter(w)
	writeOptHeader(bw, logisticOptMagic, fingerprint(d), fullCfg)
	bw.I64(int64(lo.ts))
	bw.Floats(lo.aStar)
	bw.Floats(lo.bStar)
	bw.Floats(lo.dStar)
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	// The embedded PrIU capture is self-delimiting and goes last.
	return lo.prov.WriteTo(w)
}

// LoadLogisticOpt reads a stream written by LogisticOpt.WriteTo, restores the
// embedded PrIU capture and rebuilds the eigendecomposition of the stabilized
// matrix C* = Σᵢ aᵢ,*·xᵢxᵢᵀ with the same serial accumulation capture used.
func LoadLogisticOpt(r io.Reader, d *dataset.Dataset) (*LogisticOpt, error) {
	br, cfg, err := readOptHeader(r, logisticOptMagic, fingerprint(d))
	if err != nil {
		return nil, err
	}
	ts := int(br.I64())
	aStar := br.Floats()
	bStar := br.Floats()
	dStar := br.Floats()
	if br.Err != nil {
		return nil, br.Err
	}
	if ts < 1 || ts > cfg.Iterations {
		return nil, fmt.Errorf("core: persisted ts %d out of range [1,%d]", ts, cfg.Iterations)
	}
	n, m := d.N(), d.M()
	if len(aStar) != n || len(bStar) != n || len(dStar) != m {
		return nil, fmt.Errorf("core: persisted coefficient lengths %d/%d/%d do not match dataset %dx%d",
			len(aStar), len(bStar), len(dStar), n, m)
	}
	prov, err := LoadLogisticProvenance(br.R, d)
	if err != nil {
		return nil, err
	}
	if prov.cfg.Iterations != ts {
		return nil, fmt.Errorf("core: embedded capture covers %d iterations, want ts=%d", prov.cfg.Iterations, ts)
	}
	cStar := mat.NewDense(m, m)
	for i := 0; i < n; i++ {
		if a := aStar[i]; a != 0 {
			xi := d.X.Row(i)
			mat.AddOuter(cStar, xi, xi, a)
		}
	}
	eig, err := mat.NewEigenSym(cStar)
	if err != nil {
		return nil, err
	}
	return &LogisticOpt{
		prov:           prov,
		ts:             ts,
		fullIterations: cfg.Iterations,
		aStar:          aStar,
		bStar:          bStar,
		eig:            eig,
		dStar:          dStar,
	}, nil
}

// WriteTo serializes the PrIU-opt multinomial state: the early-termination
// point, the per-class stabilized coefficients and D*ₖ vectors, followed by
// the embedded ts-truncated PrIU capture. The per-class eigendecompositions
// are rebuilt from the coefficients on load.
func (mo *MultinomialOpt) WriteTo(w io.Writer) (int64, error) {
	d := mo.prov.data
	fullCfg := mo.prov.cfg
	fullCfg.Iterations = mo.fullIterations
	bw := binio.NewWriter(w)
	writeOptHeader(bw, multinomialOptMagic, fingerprint(d), fullCfg)
	bw.I64(int64(mo.ts))
	bw.I64(int64(mo.prov.q))
	bw.Floats(mo.aStar)
	bw.Floats(mo.cStar)
	for k := range mo.dStar {
		bw.Floats(mo.dStar[k])
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return mo.prov.WriteTo(w)
}

// LoadMultinomialOpt reads a stream written by MultinomialOpt.WriteTo,
// restores the embedded PrIU capture and rebuilds each class's
// eigendecomposition of C*ₖ = Σᵢ aₖᵢ,*·xᵢxᵢᵀ in capture's accumulation order.
func LoadMultinomialOpt(r io.Reader, d *dataset.Dataset) (*MultinomialOpt, error) {
	br, cfg, err := readOptHeader(r, multinomialOptMagic, fingerprint(d))
	if err != nil {
		return nil, err
	}
	ts := int(br.I64())
	q := int(br.I64())
	aStar := br.Floats()
	cStar := br.Floats()
	if br.Err != nil {
		return nil, br.Err
	}
	if ts < 1 || ts > cfg.Iterations {
		return nil, fmt.Errorf("core: persisted ts %d out of range [1,%d]", ts, cfg.Iterations)
	}
	if q < 1 || q != d.Classes {
		return nil, fmt.Errorf("core: persisted class count %d does not match dataset's %d", q, d.Classes)
	}
	n, m := d.N(), d.M()
	if len(aStar) != q*n || len(cStar) != q*n {
		return nil, fmt.Errorf("core: persisted coefficient lengths %d/%d, want %d", len(aStar), len(cStar), q*n)
	}
	dStar := make([][]float64, q)
	for k := 0; k < q; k++ {
		dStar[k] = br.Floats()
		if br.Err != nil {
			return nil, br.Err
		}
		if len(dStar[k]) != m {
			return nil, fmt.Errorf("core: persisted D*[%d] has %d entries, want %d", k, len(dStar[k]), m)
		}
	}
	prov, err := LoadMultinomialProvenance(br.R, d)
	if err != nil {
		return nil, err
	}
	if prov.cfg.Iterations != ts {
		return nil, fmt.Errorf("core: embedded capture covers %d iterations, want ts=%d", prov.cfg.Iterations, ts)
	}
	cMats := make([]*mat.Dense, q)
	for k := 0; k < q; k++ {
		cMats[k] = mat.NewDense(m, m)
	}
	// Same loop nest as capture (samples outer, classes inner) so the float
	// accumulation order — and therefore the eigenbasis — matches bitwise.
	for i := 0; i < n; i++ {
		xi := d.X.Row(i)
		for k := 0; k < q; k++ {
			if a := aStar[k*n+i]; a != 0 {
				mat.AddOuter(cMats[k], xi, xi, a)
			}
		}
	}
	eigs := make([]*mat.Eigen, q)
	for k := 0; k < q; k++ {
		eig, err := mat.NewEigenSym(cMats[k])
		if err != nil {
			return nil, err
		}
		eigs[k] = eig
	}
	return &MultinomialOpt{
		prov:           prov,
		ts:             ts,
		fullIterations: cfg.Iterations,
		aStar:          aStar,
		cStar:          cStar,
		eigs:           eigs,
		dStar:          dStar,
	}, nil
}
