package core

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
)

// sortedRemoved picks k distinct removal ids and returns them ascending, the
// order WhatIfState.Apply requires.
func sortedRemoved(n, k int, seed int64) []int {
	ids := pickRemoved(n, k, seed)
	sort.Ints(ids)
	return ids
}

func assertBitwise(t *testing.T, name string, got, want *gbm.Model) {
	t.Helper()
	gv, wv := got.Vec(), want.Vec()
	if len(gv) != len(wv) {
		t.Fatalf("%s: length %d vs %d", name, len(gv), len(wv))
	}
	for i := range gv {
		if gv[i] != wv[i] {
			t.Fatalf("%s: coordinate %d differs: %v vs %v", name, i, gv[i], wv[i])
		}
	}
}

func TestLinearOptWhatIfBitwise(t *testing.T) {
	d, err := dataset.GenerateRegression("wlin", 160, 6, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 40, Iterations: 60, Seed: 3}
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 5} {
		ids := sortedRemoved(160, k, int64(40+k))
		st, err := lo.WhatIf()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(ids); err != nil {
			t.Fatal(err)
		}
		got, err := st.Eval()
		if err != nil {
			t.Fatal(err)
		}
		want, err := lo.Update(ids)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, "linear-opt whatif", got, want)
	}
}

func TestLinearOptWhatIfDenseRegimeFallback(t *testing.T) {
	// Δn ≥ m exercises the dense-congruence fallback inside Eval.
	d, err := dataset.GenerateRegression("wlind", 80, 4, 0.05, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 20, Iterations: 40, Seed: 5}
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := sortedRemoved(80, 6, 77) // 6 ≥ m = 4
	st, err := lo.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(ids); err != nil {
		t.Fatal(err)
	}
	got, err := st.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want, err := lo.Update(ids)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "linear-opt dense regime", got, want)

	// The empty set routes through the same fallback.
	empty, err := lo.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	got0, err := empty.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want0, err := lo.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "linear-opt empty set", got0, want0)
}

func TestLogisticOptWhatIfBitwise(t *testing.T) {
	d, err := dataset.GenerateBinary("wlog", 150, 5, 1.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 30, Iterations: 80, Seed: 7}
	sched, err := gbm.NewSchedule(150, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := CaptureLogisticOpt(d, cfg, sched, testLin, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4} {
		ids := sortedRemoved(150, k, int64(50+k))
		st, err := lo.WhatIf()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(ids); err != nil {
			t.Fatal(err)
		}
		got, err := st.Eval()
		if err != nil {
			t.Fatal(err)
		}
		want, err := lo.Update(ids)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwise(t, "logistic-opt whatif", got, want)
	}
}

func TestMultinomialOptWhatIfBitwise(t *testing.T) {
	d, err := dataset.GenerateMulticlass("wmul", 180, 5, 3, 2.5, 14)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.02, BatchSize: 36, Iterations: 80, Seed: 9}
	sched, err := gbm.NewSchedule(180, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := CaptureMultinomialOpt(d, cfg, sched, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	ids := sortedRemoved(180, 4, 61)
	st, err := mo.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(ids); err != nil {
		t.Fatal(err)
	}
	got, err := st.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mo.Update(ids)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "multinomial-opt whatif", got, want)
}

func TestWhatIfForkIndependence(t *testing.T) {
	// Apply a shared prefix once, fork, extend the branches differently: each
	// branch must match its own batch Update, and re-evaluating the first
	// branch after the second ran must still agree (no shared mutable state).
	d, err := dataset.GenerateRegression("wfork", 140, 5, 0.05, 15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 35, Iterations: 50, Seed: 11}
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	root, err := lo.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{10, 30, 50}
	if err := root.Apply(prefix); err != nil {
		t.Fatal(err)
	}
	a := root.Fork()
	b := root.Fork()
	if err := a.Apply([]int{70}); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply([]int{90, 110}); err != nil {
		t.Fatal(err)
	}

	wantA, err := lo.Update([]int{10, 30, 50, 70})
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := lo.Update([]int{10, 30, 50, 90, 110})
	if err != nil {
		t.Fatal(err)
	}
	gotA1, err := a.Eval()
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := b.Eval()
	if err != nil {
		t.Fatal(err)
	}
	gotA2, err := a.Eval()
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "fork branch a", gotA1, wantA)
	assertBitwise(t, "fork branch b", gotB, wantB)
	assertBitwise(t, "fork branch a re-eval", gotA2, wantA)

	// The root itself is untouched by the branches.
	gotRoot, err := root.Eval()
	if err != nil {
		t.Fatal(err)
	}
	wantRoot, err := lo.Update(prefix)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "fork root", gotRoot, wantRoot)
}

func TestWhatIfApplyValidation(t *testing.T) {
	d, err := dataset.GenerateRegression("wval", 60, 4, 0.05, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.01, Lambda: 0.05, BatchSize: 20, Iterations: 30, Seed: 13}
	lo, err := NewLinearOpt(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := lo.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply([]int{5, 9}); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply([]int{9}); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
	if err := st.Apply([]int{3}); err == nil {
		t.Fatal("descending id must be rejected")
	}
	if err := st.Apply([]int{60}); err == nil {
		t.Fatal("out-of-range id must be rejected")
	}
	// A rejected batch leaves the state intact: the applied set is still
	// {5, 9} and evaluates exactly.
	got, err := st.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want, err := lo.Update([]int{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "post-rejection state", got, want)
}
