package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// What-if evaluation: forkable, read-only cursors over a PrIU-opt capture.
//
// A WhatIfState accumulates a removal set incrementally — Apply(id) folds one
// more removed row into the state's partial sums — and Eval materializes the
// updated model for the set applied so far, without touching the underlying
// updater. Fork copies the partial sums, so a planner can apply a shared
// prefix of several candidate sets once and branch: k overlapping sets cost
// the union's row work instead of k full replays.
//
// Bitwise contract: for every applied set R (strictly ascending, as Apply
// enforces), Eval() returns the exact bits Update(R) would. This holds
// because the incremental accumulators replay the same floating-point
// operation sequence as the batch path: rows are folded in ascending index
// order, each eigenvalue's Gram correction sums dot² over rows in that same
// order starting from zero, and the per-eigenvector dot uses the identical
// operand order as Dense.MulVecInto (row element × eigenvector element,
// ascending coordinates). The remaining algebra (Values[i] ± s, the
// recurrence tails) is copied verbatim from the Update implementations.

// WhatIfState is a forkable what-if cursor. Apply folds additional removed
// row ids into the state (ids must be strictly ascending across all Apply
// calls — the order the batch Update paths scan rows in); Fork returns an
// independent copy sharing only immutable captured state; Eval returns the
// model the updater's Update would produce for the applied set. A state
// whose Apply returned an error must be discarded.
type WhatIfState interface {
	Apply(ids []int) error
	Fork() WhatIfState
	Eval() (*gbm.Model, error)
}

// extendWhatIfIDs validates that ids are in range and strictly ascending
// past the current tail, returning the extended id list. Validation is
// complete before the caller mutates any accumulator, so a rejected batch
// leaves the state usable.
func extendWhatIfIDs(cur, ids []int, n int) ([]int, error) {
	last := -1
	if len(cur) > 0 {
		last = cur[len(cur)-1]
	}
	for _, id := range ids {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("core: whatif id %d out of range [0,%d)", id, n)
		}
		if id <= last {
			return nil, fmt.Errorf("core: whatif ids must be strictly ascending (%d after %d)", id, last)
		}
		last = id
	}
	return append(cur, ids...), nil
}

// linearWhatIf incrementally maintains N' = N − Σ yᵢxᵢ and the per-eigenvalue
// Gram corrections ‖ΔX·qⱼ‖² for LinearOpt (Sec 5.2).
type linearWhatIf struct {
	lo *LinearOpt
	// qt is Qᵀ (rows are eigenvectors), shared read-only across forks so the
	// per-row dot products run over contiguous memory.
	qt     *mat.Dense
	ids    []int
	nPrime []float64
	sSum   []float64
}

// WhatIf returns a forkable what-if cursor over the capture.
func (lo *LinearOpt) WhatIf() (WhatIfState, error) {
	if lo.eig == nil {
		return nil, ErrNoCapture
	}
	return &linearWhatIf{
		lo:     lo,
		qt:     lo.eig.Q.T(),
		nPrime: mat.CloneVec(lo.n),
		sSum:   make([]float64, lo.data.M()),
	}, nil
}

func (s *linearWhatIf) Apply(ids []int) error {
	ext, err := extendWhatIfIDs(s.ids, ids, s.lo.data.N())
	if err != nil {
		return err
	}
	for _, id := range ids {
		xi := s.lo.data.X.Row(id)
		mat.Axpy(s.nPrime, -s.lo.data.Y[id], xi)
		for j := range s.sSum {
			d := mat.Dot(xi, s.qt.Row(j))
			s.sSum[j] += d * d
		}
	}
	s.ids = ext
	return nil
}

func (s *linearWhatIf) Fork() WhatIfState {
	return &linearWhatIf{
		lo:     s.lo,
		qt:     s.qt,
		ids:    append([]int(nil), s.ids...),
		nPrime: mat.CloneVec(s.nPrime),
		sSum:   mat.CloneVec(s.sSum),
	}
}

func (s *linearWhatIf) Eval() (*gbm.Model, error) {
	dn := len(s.ids)
	m := s.lo.data.M()
	if dn == 0 || dn >= m {
		// Regimes the incremental Gram accumulation does not model: the
		// empty set clones the eigenvalues and Δn ≥ m switches to the dense
		// congruence — both served exactly by the (pure) batch path.
		return s.lo.Update(s.ids)
	}
	nEff := s.lo.data.N() - dn
	if nEff <= 0 {
		return nil, fmt.Errorf("core: removal leaves no samples")
	}
	cPrime := make([]float64, m)
	for i := range cPrime {
		cPrime[i] = s.lo.eig.Values[i] - s.sSum[i]
	}
	eta, lambda := s.lo.cfg.Eta, s.lo.cfg.Lambda
	qtn := s.lo.eig.Q.MulVecT(s.nPrime)
	z := make([]float64, m)
	rollRecurrence(z, s.lo.cfg.Iterations, func(i int) (gamma, beta, z0 float64) {
		return 1 - eta*lambda - 2*eta*cPrime[i]/float64(nEff),
			2 * eta / float64(nEff) * qtn[i],
			0
	})
	w := s.lo.eig.Q.MulVec(z)
	return &gbm.Model{Task: dataset.Regression, W: mat.NewDenseData(1, m, w)}, nil
}

// logisticWhatIf incrementally maintains D*' and the Gram corrections
// ‖Z·qⱼ‖² (rows √(−aᵢ,*)·xᵢ) for LogisticOpt (Sec 5.4). The PrIU phase-1
// roll to ts is a function of the full set and runs at Eval.
type logisticWhatIf struct {
	lo      *LogisticOpt
	qt      *mat.Dense
	ids     []int
	dStar   []float64
	sSum    []float64
	scratch []float64
}

// WhatIf returns a forkable what-if cursor over the capture.
func (lo *LogisticOpt) WhatIf() (WhatIfState, error) {
	if lo.eig == nil {
		return nil, ErrNoCapture
	}
	m := lo.prov.data.M()
	return &logisticWhatIf{
		lo:      lo,
		qt:      lo.eig.Q.T(),
		dStar:   mat.CloneVec(lo.dStar),
		sSum:    make([]float64, m),
		scratch: make([]float64, m),
	}, nil
}

func (s *logisticWhatIf) Apply(ids []int) error {
	d := s.lo.prov.data
	ext, err := extendWhatIfIDs(s.ids, ids, d.N())
	if err != nil {
		return err
	}
	for _, id := range ids {
		xi := d.X.Row(id)
		sc := sqrtAbs(s.lo.aStar[id])
		row := s.scratch
		for j, v := range xi {
			row[j] = sc * v
		}
		for j := range s.sSum {
			dv := mat.Dot(row, s.qt.Row(j))
			s.sSum[j] += dv * dv
		}
		mat.Axpy(s.dStar, -s.lo.bStar[id]*d.Y[id], xi)
	}
	s.ids = ext
	return nil
}

func (s *logisticWhatIf) Fork() WhatIfState {
	return &logisticWhatIf{
		lo:      s.lo,
		qt:      s.qt,
		ids:     append([]int(nil), s.ids...),
		dStar:   mat.CloneVec(s.dStar),
		sSum:    mat.CloneVec(s.sSum),
		scratch: make([]float64, len(s.scratch)),
	}
}

func (s *logisticWhatIf) Eval() (*gbm.Model, error) {
	dn := len(s.ids)
	if dn == 0 {
		return s.lo.Update(nil)
	}
	d := s.lo.prov.data
	m := d.M()
	nEff := d.N() - dn
	if nEff <= 0 {
		return nil, fmt.Errorf("core: removal leaves no samples")
	}
	rm, err := gbm.RemovalSet(d.N(), s.ids)
	if err != nil {
		return nil, err
	}
	w := make([]float64, m)
	s.lo.prov.updateInto(w, rm, 0, s.lo.ts)
	cPrime := make([]float64, m)
	for i := range cPrime {
		cPrime[i] = s.lo.eig.Values[i] + s.sSum[i]
	}
	eta, lambda := s.lo.prov.cfg.Eta, s.lo.prov.cfg.Lambda
	zc := s.lo.eig.Q.MulVecT(w)
	dt := s.lo.eig.Q.MulVecT(s.dStar)
	rem := s.lo.fullIterations - s.lo.ts
	rollRecurrence(zc, rem, func(i int) (gamma, beta, z0 float64) {
		return 1 - eta*lambda + eta*cPrime[i]/float64(nEff),
			eta * dt[i] / float64(nEff),
			zc[i]
	})
	w = s.lo.eig.Q.MulVec(zc)
	return &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}, nil
}

// multinomialWhatIf is the per-class generalization: D*ₖ' and the class-k
// Gram corrections accumulate per applied row, the per-class eigen
// recurrences run at Eval.
type multinomialWhatIf struct {
	mo      *MultinomialOpt
	qts     []*mat.Dense
	ids     []int
	dStar   [][]float64
	sSum    [][]float64
	scratch []float64
}

// WhatIf returns a forkable what-if cursor over the capture.
func (mo *MultinomialOpt) WhatIf() (WhatIfState, error) {
	if mo.eigs == nil {
		return nil, ErrNoCapture
	}
	m, q := mo.prov.data.M(), mo.prov.q
	s := &multinomialWhatIf{
		mo:      mo,
		qts:     make([]*mat.Dense, q),
		dStar:   make([][]float64, q),
		sSum:    make([][]float64, q),
		scratch: make([]float64, m),
	}
	for k := 0; k < q; k++ {
		s.qts[k] = mo.eigs[k].Q.T()
		s.dStar[k] = mat.CloneVec(mo.dStar[k])
		s.sSum[k] = make([]float64, m)
	}
	return s, nil
}

func (s *multinomialWhatIf) Apply(ids []int) error {
	d := s.mo.prov.data
	n := d.N()
	ext, err := extendWhatIfIDs(s.ids, ids, n)
	if err != nil {
		return err
	}
	for _, id := range ids {
		xi := d.X.Row(id)
		for k := range s.qts {
			sc := sqrtAbs(s.mo.aStar[k*n+id])
			row := s.scratch
			for j, v := range xi {
				row[j] = sc * v
			}
			for j := range s.sSum[k] {
				dv := mat.Dot(row, s.qts[k].Row(j))
				s.sSum[k][j] += dv * dv
			}
			mat.Axpy(s.dStar[k], -s.mo.cStar[k*n+id], xi)
		}
	}
	s.ids = ext
	return nil
}

func (s *multinomialWhatIf) Fork() WhatIfState {
	f := &multinomialWhatIf{
		mo:      s.mo,
		qts:     s.qts,
		ids:     append([]int(nil), s.ids...),
		dStar:   make([][]float64, len(s.dStar)),
		sSum:    make([][]float64, len(s.sSum)),
		scratch: make([]float64, len(s.scratch)),
	}
	for k := range s.dStar {
		f.dStar[k] = mat.CloneVec(s.dStar[k])
		f.sSum[k] = mat.CloneVec(s.sSum[k])
	}
	return f
}

func (s *multinomialWhatIf) Eval() (*gbm.Model, error) {
	dn := len(s.ids)
	if dn == 0 {
		return s.mo.Update(nil)
	}
	d := s.mo.prov.data
	m, q := d.M(), s.mo.prov.q
	nEff := d.N() - dn
	if nEff <= 0 {
		return nil, fmt.Errorf("core: removal leaves no samples")
	}
	rm, err := gbm.RemovalSet(d.N(), s.ids)
	if err != nil {
		return nil, err
	}
	w := mat.NewDense(q, m)
	s.mo.prov.updateInto(w, rm, 0, s.mo.ts)
	eta, lambda := s.mo.prov.cfg.Eta, s.mo.prov.cfg.Lambda
	rem := s.mo.fullIterations - s.mo.ts
	for k := 0; k < q; k++ {
		cPrime := make([]float64, m)
		for i := range cPrime {
			cPrime[i] = s.mo.eigs[k].Values[i] - s.sSum[k][i]
		}
		zc := s.mo.eigs[k].Q.MulVecT(w.Row(k))
		dt := s.mo.eigs[k].Q.MulVecT(s.dStar[k])
		for i := 0; i < m; i++ {
			gamma := 1 - eta*lambda - eta*cPrime[i]/float64(nEff)
			beta := -eta * dt[i] / float64(nEff)
			zi := zc[i]
			for t := 0; t < rem; t++ {
				zi = gamma*zi + beta
			}
			zc[i] = zi
		}
		copy(w.Row(k), s.mo.eigs[k].Q.MulVec(zc))
	}
	return &gbm.Model{Task: dataset.MultiClassification, W: w}, nil
}
