package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
	"repro/internal/mat"
)

// LogisticOpt is PrIU-opt for binary logistic regression (Sec 5.4). It
// wraps a PrIU capture truncated at ts = ⌈fraction·τ⌉ iterations and, for the
// remaining τ−ts iterations, freezes the linearization coefficients at their
// iteration-ts values (they stabilize as w converges): the stabilized
// full-data matrices C* = Σᵢ aᵢ,*·xᵢxᵢᵀ and D* = Σᵢ bᵢ,*·yᵢxᵢ are
// eigendecomposed offline, so the online update needs only an incremental
// eigenvalue update for the removed rows plus O((τ−ts)·m) scalar recurrences.
type LogisticOpt struct {
	prov *LogisticProvenance
	ts   int
	// fullIterations is the total horizon τ; the PrIU caches cover only the
	// first ts of them.
	fullIterations int

	// Stabilized coefficients for every sample (aStar ≤ 0).
	aStar, bStar []float64
	// Eigendecomposition of C* and the vector D*.
	eig   *mat.Eigen
	dStar []float64
}

// CaptureLogisticOpt performs the PrIU-opt offline phase: PrIU capture for
// the first ts iterations, then stabilization, full-data C*/D* and the
// eigendecomposition of C*.
func CaptureLogisticOpt(d *dataset.Dataset, cfg gbm.Config, sched *gbm.Schedule, lin *interp.Linearizer, opts Options) (*LogisticOpt, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ts := int(float64(cfg.Iterations) * opts.earlyTermFrac())
	if ts < 1 {
		ts = 1
	}
	if ts > cfg.Iterations {
		ts = cfg.Iterations
	}
	// Capture with a config truncated at ts; the schedule still covers the
	// full τ iterations, which updateInto relies on only up to ts.
	capCfg := cfg
	capCfg.Iterations = ts
	prov, err := CaptureLogistic(d, capCfg, sched, lin, opts)
	if err != nil {
		return nil, err
	}
	// Remember the full horizon for the second phase.
	prov.cfg.Iterations = ts // capture stored ts; keep explicit
	lo := &LogisticOpt{prov: prov, ts: ts}
	lo.prov.cfg = capCfg

	m := d.M()
	w := prov.modelL.W.Row(0)
	lo.aStar = make([]float64, d.N())
	lo.bStar = make([]float64, d.N())
	cStar := mat.NewDense(m, m)
	lo.dStar = make([]float64, m)
	linz := prov.lin
	for i := 0; i < d.N(); i++ {
		xi := d.X.Row(i)
		yi := d.Y[i]
		a, b := linz.Coefficients(yi * mat.Dot(xi, w))
		lo.aStar[i], lo.bStar[i] = a, b
		if a != 0 {
			mat.AddOuter(cStar, xi, xi, a)
		}
		mat.Axpy(lo.dStar, b*yi, xi)
	}
	eig, err := mat.NewEigenSym(cStar)
	if err != nil {
		return nil, err
	}
	lo.eig = eig
	lo.fullIterations = cfg.Iterations
	return lo, nil
}

// Model returns the standard-rule initial model Minit (trained to ts; the
// exact model over the full horizon is available from gbm directly).
func (lo *LogisticOpt) Model() *gbm.Model { return lo.prov.Model() }

// Ts returns the early-termination iteration ts.
func (lo *LogisticOpt) Ts() int { return lo.ts }

// Update computes the updated parameters: PrIU iterations up to ts, then the
// eigen-space recurrence for the remaining τ−ts iterations with incrementally
// updated eigenvalues (Eq 18) and the stabilized D*.
func (lo *LogisticOpt) Update(removed []int) (*gbm.Model, error) {
	if lo.eig == nil {
		return nil, ErrNoCapture
	}
	d := lo.prov.data
	rm, err := gbm.RemovalSet(d.N(), removed)
	if err != nil {
		return nil, err
	}
	m := d.M()
	dn := len(rm)
	nEff := d.N() - dn
	if nEff <= 0 {
		return nil, fmt.Errorf("core: removal leaves no samples")
	}

	// Phase 1: PrIU incremental iterations 0..ts.
	w := make([]float64, m)
	lo.prov.updateInto(w, rm, 0, lo.ts)

	// Phase 2 preparation: eigenvalues of C*' = C* − ΔC* where
	// ΔC* = Σ_{i∈R} aᵢ,*·xᵢxᵢᵀ (aᵢ,* ≤ 0 ⇒ −ΔC* = ZᵀZ with rows √(−aᵢ,*)xᵢ),
	// and D*' = D* − ΔD*.
	dStar := mat.CloneVec(lo.dStar)
	var cPrime []float64
	if dn == 0 {
		cPrime = mat.CloneVec(lo.eig.Values)
	} else {
		z := mat.NewDense(dn, m)
		r := 0
		for i := 0; i < d.N(); i++ {
			if !rm[i] {
				continue
			}
			xi := d.X.Row(i)
			s := sqrtAbs(lo.aStar[i])
			dst := z.Row(r)
			for j, v := range xi {
				dst[j] = s * v
			}
			mat.Axpy(dStar, -lo.bStar[i]*d.Y[i], xi)
			r++
		}
		cPrime = lo.eig.UpdateValuesGram(z, +1)
	}

	// Phase 2: coordinate recurrences in the eigenbasis —
	// z ← (1−ηλ + η·c'ᵢ/n')·z + η·(QᵀD*')ᵢ/n', for τ−ts iterations.
	eta, lambda := lo.prov.cfg.Eta, lo.prov.cfg.Lambda
	zc := lo.eig.Q.MulVecT(w)
	dt := lo.eig.Q.MulVecT(dStar)
	rem := lo.fullIterations - lo.ts
	rollRecurrence(zc, rem, func(i int) (gamma, beta, z0 float64) {
		return 1 - eta*lambda + eta*cPrime[i]/float64(nEff),
			eta * dt[i] / float64(nEff),
			zc[i]
	})
	w = lo.eig.Q.MulVec(zc)
	return &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}, nil
}

// FootprintBytes returns the provenance memory: the ts-truncated PrIU caches
// plus the O(m²) eigen state and the stabilized coefficients.
func (lo *LogisticOpt) FootprintBytes() int64 {
	total := lo.prov.FootprintBytes()
	r, c := lo.eig.Q.Dims()
	total += int64(r)*int64(c)*8 + int64(len(lo.eig.Values))*8
	total += int64(len(lo.aStar))*8 + int64(len(lo.bStar))*8 + int64(len(lo.dStar))*8
	return total
}
