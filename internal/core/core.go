// Package core implements PrIU and PrIU-opt, the provenance-based incremental
// model-update algorithms that are the paper's contribution (Sec 5).
//
// The workflow mirrors the paper's two phases:
//
//  1. Capture (offline, during the initial training over the full dataset):
//     per iteration t the sample-only contributions of the gradient update
//     rule are cached — Σ xᵢxᵢᵀ and Σ xᵢyᵢ for linear regression (Eq 13),
//     C⁽ᵗ⁾ = Σ aᵢ,⁽ᵗ⁾xᵢxᵢᵀ and D⁽ᵗ⁾ = Σ bᵢ,⁽ᵗ⁾yᵢxᵢ for the linearized
//     logistic rule (Eq 19). These are the provenance annotations with all
//     tokens still symbolic; matrices are optionally stored as truncated SVD
//     factors P⁽ᵗ⁾₁..r·Vᵀ⁽ᵗ⁾₁..r (Eq 14/20).
//
//  2. Update (online, when a subset R of samples is deleted): the deletion is
//     propagated by "zeroing out" the removed samples' tokens, which reduces
//     to subtracting their contributions ΔC⁽ᵗ⁾/ΔD⁽ᵗ⁾ from the caches and
//     re-running the cheap linear iteration — O(rm + ΔBm) per iteration
//     instead of O((B−ΔB)m) plus non-linear evaluations for retraining.
//
// PrIU-opt adds the small-feature-space optimizations of Sec 5.2/5.4:
// a GD approximation with eigendecomposition of M = XᵀX and incremental
// eigenvalue updates (linear regression), and early termination of
// provenance tracking at ts ≈ 0.7τ with the same eigen machinery applied to
// the stabilized C matrix (logistic regression).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/par"
)

// Options configures provenance capture.
type Options struct {
	// Epsilon is the SVD coverage threshold ε of Theorems 6/8: the truncation
	// rank r is the smallest rank whose singular-value mass is ≥ (1−ε) of the
	// total. Zero means the default 0.01.
	Epsilon float64
	// Mode selects the cache representation.
	Mode CacheMode
	// EarlyTerminationFraction is PrIU-opt's ts/τ ratio for logistic
	// regression (Sec 5.4's rule of thumb is 0.7). Zero means 0.7.
	EarlyTerminationFraction float64
}

// CacheMode selects how per-iteration provenance matrices are stored.
type CacheMode int

const (
	// ModeAuto stores full m×m matrices when m ≤ B and SVD factors
	// otherwise, following the paper's guidance that SVD pays off when the
	// mini-batch is smaller than the feature space.
	ModeAuto CacheMode = iota
	// ModeFull always stores full matrices.
	ModeFull
	// ModeSVD always stores truncated SVD factors.
	ModeSVD
)

// String returns the mode name.
func (m CacheMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeFull:
		return "full"
	case ModeSVD:
		return "svd"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

const (
	defaultEpsilon       = 0.01
	defaultEarlyTermFrac = 0.7
)

func (o Options) epsilon() float64 {
	if o.Epsilon == 0 {
		return defaultEpsilon
	}
	return o.Epsilon
}

func (o Options) earlyTermFrac() float64 {
	if o.EarlyTerminationFraction == 0 {
		return defaultEarlyTermFrac
	}
	return o.EarlyTerminationFraction
}

func (o Options) validate() error {
	if o.Epsilon < 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon %v out of [0,1)", o.Epsilon)
	}
	if o.EarlyTerminationFraction < 0 || o.EarlyTerminationFraction > 1 {
		return fmt.Errorf("core: early-termination fraction %v out of [0,1]", o.EarlyTerminationFraction)
	}
	return nil
}

// ErrNoCapture is returned when an update is requested before capture.
var ErrNoCapture = errors.New("core: provenance has not been captured")

// iterCache stores one iteration's provenance matrix either as a full m×m
// matrix or as SVD factors P (m×r) and V (m×r) with the matrix = P·Vᵀ.
type iterCache struct {
	full *mat.Dense
	p, v *mat.Dense
}

// apply computes dst = cache·w for an m-vector w. scratch must have length r
// (ignored in full mode).
func (c *iterCache) apply(dst, w, scratch []float64) {
	if c.full != nil {
		c.full.MulVecInto(dst, w)
		return
	}
	r := c.p.Cols()
	vtw := scratch[:r]
	c.v.MulVecTInto(vtw, w)
	c.p.MulVecInto(dst, vtw)
}

// rank returns the stored rank (m for full mode).
func (c *iterCache) rank() int {
	if c.full != nil {
		return c.full.Rows()
	}
	return c.p.Cols()
}

// footprint returns the cache's storage in bytes.
func (c *iterCache) footprint() int64 {
	if c.full != nil {
		r, cc := c.full.Dims()
		return int64(r) * int64(cc) * 8
	}
	pr, pc := c.p.Dims()
	vr, vc := c.v.Dims()
	return int64(pr)*int64(pc)*8 + int64(vr)*int64(vc)*8
}

// weightedGramCache builds the iteration cache for Σᵢ wᵢ·xᵢxᵢᵀ over the given
// rows, where all weights share one sign (wᵢ ≡ 1 for linear regression,
// wᵢ = aᵢ ≤ 0 for linearized logistic, wᵢ = aᵢ ≥ 0 for multinomial).
//
// In SVD mode the factors are obtained from the small-side eigendecomposition:
// with Z the |B|×m matrix of rows √|wᵢ|·xᵢ and sign s, the matrix is s·ZᵀZ;
// eigenpairs (σ², u) of the |B|×|B| Gram K = ZZᵀ give right vectors
// v = Zᵀu/σ, so s·ZᵀZ = Σ s·σ²·vvᵀ, truncated by the ε coverage rule. This
// keeps capture cost O(B²m + B³) instead of O(m³) when B < m.
func weightedGramCache(rows [][]float64, weights []float64, m int, useSVD bool, eps float64) (*iterCache, error) {
	sign, nz := weightSign(rows, weights)
	if !useSVD {
		full := mat.NewDense(m, m)
		if nz == 0 {
			return &iterCache{full: full}, nil
		}
		// Σ wᵢ·xᵢxᵢᵀ = sign·ZᵀZ routed through the blocked Gram kernel, which
		// is both faster and bitwise-deterministic at any worker count.
		z := buildScaledRows(rows, weights, nz, m)
		z.GramInto(full)
		if sign < 0 {
			full.Scale(-1)
		}
		return &iterCache{full: full}, nil
	}
	if nz == 0 {
		// All-zero weights: represent the zero matrix with rank-1 zero factors.
		return &iterCache{p: mat.NewDense(m, 1), v: mat.NewDense(m, 1)}, nil
	}
	z := buildScaledRows(rows, weights, nz, m)
	// K = Z·Zᵀ via the blocked row-Gram kernel.
	kmat := mat.NewDense(nz, nz)
	z.RowGramInto(kmat)
	eig, err := mat.NewEigenSym(kmat)
	if err != nil {
		return nil, err
	}
	// Coverage truncation over the (non-negative) eigenvalues of K.
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	r := 0
	if total > 0 {
		target := (1 - eps) * total
		var run float64
		for _, v := range eig.Values {
			if v <= 0 {
				break
			}
			run += v
			r++
			if run >= target {
				break
			}
		}
	}
	if r == 0 {
		return &iterCache{p: mat.NewDense(m, 1), v: mat.NewDense(m, 1)}, nil
	}
	p := mat.NewDense(m, r)
	v := mat.NewDense(m, r)
	// Each factor column depends only on its own eigenpair and writes disjoint
	// columns of P and V, so the loop fans out with per-chunk scratch.
	par.For(r, par.Grain(2*nz*m), func(lo, hi int) {
		u := make([]float64, nz)
		vcol := make([]float64, m)
		for c := lo; c < hi; c++ {
			sigma2 := eig.Values[c]
			for i := 0; i < nz; i++ {
				u[i] = eig.Q.At(i, c)
			}
			// vcol = Zᵀu / σ.
			z.MulVecTInto(vcol, u)
			inv := 1 / sqrtAbs(sigma2)
			for i := 0; i < m; i++ {
				vv := vcol[i] * inv
				v.Set(i, c, vv)
				p.Set(i, c, sign*sigma2*vv)
			}
		}
	})
	return &iterCache{p: p, v: v}, nil
}

// weightSign returns the shared sign of the weights (1.0 when weights is nil
// or all-zero) and the count of non-zero-weight rows.
func weightSign(rows [][]float64, weights []float64) (sign float64, nz int) {
	sign = 1.0
	if weights == nil {
		return sign, len(rows)
	}
	for _, w := range weights {
		if w < 0 {
			sign = -1
			break
		}
		if w > 0 {
			break
		}
	}
	for _, w := range weights {
		if w != 0 {
			nz++
		}
	}
	return sign, nz
}

// buildScaledRows packs the non-zero-weight rows √|wᵢ|·xᵢ into a dense nz×m
// matrix Z, so that sign·ZᵀZ = Σ wᵢ·xᵢxᵢᵀ.
func buildScaledRows(rows [][]float64, weights []float64, nz, m int) *mat.Dense {
	z := mat.NewDense(nz, m)
	zi := 0
	for k, row := range rows {
		w := 1.0
		if weights != nil {
			w = weights[k]
		}
		if w == 0 {
			continue
		}
		dst := z.Row(zi)
		if w == 1 {
			copy(dst, row)
		} else {
			s := sqrtAbs(w)
			for j, v := range row {
				dst[j] = s * v
			}
		}
		zi++
	}
	return z
}

func sqrtAbs(x float64) float64 { return math.Sqrt(math.Abs(x)) }

// rollRecurrence evaluates z[i] ← γᵢ·z[i] + βᵢ repeated `iters` times for
// every coordinate, the O(τm) eigenbasis recurrence shared by PrIU-opt's
// linear (Eq 17) and logistic (Sec 5.4) update phases. Coordinates are
// independent, so the loop runs block-parallel for large τ·m.
func rollRecurrence(z []float64, iters int, coef func(i int) (gamma, beta, z0 float64)) {
	par.For(len(z), par.Grain(iters), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gamma, beta, zi := coef(i)
			for t := 0; t < iters; t++ {
				zi = gamma*zi + beta
			}
			z[i] = zi
		}
	})
}

// removalMask converts a removal set into a dense boolean mask for cheap
// membership checks in the per-batch-member hot loops.
func removalMask(n int, removed map[int]bool) []bool {
	if len(removed) == 0 {
		return nil
	}
	mask := make([]bool, n)
	for i, v := range removed {
		if v && i >= 0 && i < n {
			mask[i] = true
		}
	}
	return mask
}
