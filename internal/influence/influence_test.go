package influence

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

func pickRemoved(n, k int, seed int64) []int {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

func TestUpdateLinearSmallRemovalAccurate(t *testing.T) {
	// For quadratic objectives a Newton step from near the optimum is exact,
	// so with a well-converged w* and a small removal INFL must land close to
	// the retrained model.
	d, err := dataset.GenerateRegression("infl", 300, 5, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.02, Lambda: 0.05, BatchSize: 300, Iterations: 2000, Seed: 2}
	sched, err := gbm.NewSchedule(300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainLinear(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(300, 3, 3)
	rm, _ := gbm.RemovalSet(300, removed)
	want, err := gbm.TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UpdateLinear(d, minit, cfg.Lambda, removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := mat.CosineSimilarity(got.Vec(), want.Vec()); cos < 0.999 {
		t.Fatalf("INFL linear cosine %v", cos)
	}
}

func TestUpdateLogisticDegradesWithLargeRemoval(t *testing.T) {
	// The paper's central claim about INFL: accuracy degrades as more samples
	// are removed (Taylor expansion leaves the trust region). Distance to the
	// retrained model must grow substantially from 1% to 30% deletion.
	d, err := dataset.GenerateBinary("infl-b", 300, 6, 1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.01, BatchSize: 50, Iterations: 800, Seed: 5}
	sched, err := gbm.NewSchedule(300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainLogistic(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(k int) float64 {
		removed := pickRemoved(300, k, 6)
		rm, _ := gbm.RemovalSet(300, removed)
		want, err := gbm.TrainLogistic(d, cfg, sched, rm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UpdateLogistic(d, minit, cfg.Lambda, removed)
		if err != nil {
			t.Fatal(err)
		}
		return mat.Distance(got.Vec(), want.Vec())
	}
	small, large := dist(3), dist(90)
	if large <= small {
		t.Fatalf("INFL error did not grow with removal size: %v vs %v", small, large)
	}
}

func TestUpdateLogisticSmallRemovalReasonable(t *testing.T) {
	d, err := dataset.GenerateBinary("infl-s", 200, 4, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.05, BatchSize: 40, Iterations: 600, Seed: 8}
	sched, err := gbm.NewSchedule(200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainLogistic(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(200, 2, 9)
	rm, _ := gbm.RemovalSet(200, removed)
	want, err := gbm.TrainLogistic(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UpdateLogistic(d, minit, cfg.Lambda, removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := mat.CosineSimilarity(got.Vec(), want.Vec()); cos < 0.99 {
		t.Fatalf("INFL logistic small-removal cosine %v", cos)
	}
}

func TestUpdateMultinomial(t *testing.T) {
	d, err := dataset.GenerateMulticlass("infl-m", 240, 6, 3, 2.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.05, BatchSize: 40, Iterations: 500, Seed: 11}
	sched, err := gbm.NewSchedule(240, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainMultinomial(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(240, 3, 12)
	got, err := UpdateMultinomial(d, minit, cfg.Lambda, removed)
	if err != nil {
		t.Fatal(err)
	}
	rm, _ := gbm.RemovalSet(240, removed)
	want, err := gbm.TrainMultinomial(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	if cos := mat.CosineSimilarity(got.Vec(), want.Vec()); cos < 0.98 {
		t.Fatalf("INFL multinomial cosine %v", cos)
	}
}

func TestTaskValidation(t *testing.T) {
	reg, err := dataset.GenerateRegression("r", 20, 3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := dataset.GenerateBinary("b", 20, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := &gbm.Model{Task: dataset.Regression, W: mat.NewDense(1, 3)}
	if _, err := UpdateLinear(bin, w, 0.1, nil); err == nil {
		t.Fatal("expected task error")
	}
	if _, err := UpdateLogistic(reg, w, 0.1, nil); err == nil {
		t.Fatal("expected task error")
	}
	if _, err := UpdateMultinomial(reg, w, 0.1, nil); err == nil {
		t.Fatal("expected task error")
	}
	if _, err := UpdateLinear(reg, w, 0.1, []int{99}); err == nil {
		t.Fatal("expected range error")
	}
}
