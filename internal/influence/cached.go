package influence

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/par"
)

// Cached is the paper-faithful INFL method: the influence-function
// approximation of Koh & Liang extended to multi-sample deletion. The
// full-data Hessian H at w* is computed and factorized once, offline; every
// deletion then costs only O(Δn·m + m²) — a gradient subtraction and a
// triangular solve:
//
//	w_new ≈ w* − H⁻¹·∇g(w*),   ∇g(w*) = (1/(n−Δn))·Σ_{i∉R} ∇hᵢ(w*) + λw*
//
// Crucially H is NOT recomputed for the surviving samples (that is the
// "lower-order Taylor terms only" approximation the paper attributes to
// INFL): the update is very fast — up to an order of magnitude below
// PrIU-opt (Q5) — but its accuracy degrades as the removal grows, because
// the curvature of the leave-R-out objective drifts away from H. The direct
// Update* functions in this package implement the exact-Hessian Newton step
// for comparison.
type Cached struct {
	data   *dataset.Dataset
	model  *gbm.Model
	lambda float64
	q      int // 1 for linear/binary, #classes for multinomial

	// hess[k] is the Cholesky factorization of the per-class full-data
	// Hessian (1/n)·Σᵢ ∇²hᵢ + λI at w*.
	hess []*mat.Cholesky
	// grad[k] = Σᵢ ∇hᵢ (unnormalized data term).
	grad [][]float64
	// gscale[k][i]: ∇hᵢ = gscale·xᵢ, per class.
	gscale [][]float64
}

// NewCached builds the cached INFL state for a trained model (any of the
// three regression families). The Hessian factorization happens here, in the
// offline phase.
func NewCached(d *dataset.Dataset, model *gbm.Model, lambda float64) (*Cached, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("influence: negative lambda %v", lambda)
	}
	n, m := d.N(), d.M()
	c := &Cached{data: d, model: model, lambda: lambda}
	switch d.Task {
	case dataset.Regression, dataset.BinaryClassification:
		c.q = 1
	case dataset.MultiClassification:
		c.q = model.W.Rows()
	default:
		return nil, fmt.Errorf("influence: unsupported task %v", d.Task)
	}
	c.hess = make([]*mat.Cholesky, c.q)
	c.grad = make([][]float64, c.q)
	c.gscale = make([][]float64, c.q)
	hmats := make([]*mat.Dense, c.q)
	for k := 0; k < c.q; k++ {
		hmats[k] = mat.NewDense(m, m)
		c.grad[k] = make([]float64, m)
		c.gscale[k] = make([]float64, n)
	}
	logits := make([]float64, c.q)
	probs := make([]float64, c.q)
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		xi := d.X.Row(i)
		switch d.Task {
		case dataset.Regression:
			w := model.W.Row(0)
			mat.AddOuter(hmats[0], xi, xi, 2*inv)
			c.gscale[0][i] = 2 * (mat.Dot(xi, w) - d.Y[i])
		case dataset.BinaryClassification:
			w := model.W.Row(0)
			z := d.Y[i] * mat.Dot(xi, w)
			mat.AddOuter(hmats[0], xi, xi, inv*interp.Sigmoid(z)*interp.Sigmoid(-z))
			c.gscale[0][i] = -d.Y[i] * interp.F(z)
		case dataset.MultiClassification:
			for k := 0; k < c.q; k++ {
				logits[k] = mat.Dot(model.W.Row(k), xi)
			}
			gbm.Softmax(probs, logits)
			yi := int(d.Y[i])
			for k := 0; k < c.q; k++ {
				coef := probs[k]
				if k == yi {
					coef -= 1
				}
				mat.AddOuter(hmats[k], xi, xi, inv*probs[k]*(1-probs[k]))
				c.gscale[k][i] = coef
			}
		}
		for k := 0; k < c.q; k++ {
			mat.Axpy(c.grad[k], c.gscale[k][i], xi)
		}
	}
	for k := 0; k < c.q; k++ {
		for j := 0; j < m; j++ {
			hmats[k].Add(j, j, lambda)
		}
		ch, err := mat.NewCholesky(hmats[k])
		if err != nil {
			return nil, fmt.Errorf("influence: Hessian for class %d not SPD: %w", k, err)
		}
		c.hess[k] = ch
	}
	return c, nil
}

// Update computes the INFL-updated model for the removed set: subtract the
// removed samples' gradients from the cached sum, renormalize, add the
// regularizer and solve against the cached full-data Hessian factorization.
func (c *Cached) Update(removed []int) (*gbm.Model, error) {
	rm, err := gbm.RemovalSet(c.data.N(), removed)
	if err != nil {
		return nil, err
	}
	n, m := c.data.N(), c.data.M()
	nEff := n - len(rm)
	if nEff <= 0 {
		return nil, fmt.Errorf("influence: removal leaves no samples")
	}
	inv := 1.0 / float64(nEff)
	out := c.model.W.Clone()
	// Classes are independent (disjoint gradient caches, Hessian factors and
	// output rows), so the gradient correction + triangular solve runs
	// class-parallel.
	par.For(c.q, 1, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			g := mat.CloneVec(c.grad[k])
			for i := range rm {
				mat.Axpy(g, -c.gscale[k][i], c.data.X.Row(i))
			}
			wk := c.model.W.Row(k)
			for j := 0; j < m; j++ {
				g[j] = inv*g[j] + c.lambda*wk[j]
			}
			step := c.hess[k].Solve(g)
			mat.Axpy(out.Row(k), -1, step)
		}
	})
	return &gbm.Model{Task: c.data.Task, W: out}, nil
}

// FootprintBytes returns the cached state's memory: q·(m² + m + n) floats
// (the Cholesky factor stores m² per class).
func (c *Cached) FootprintBytes() int64 {
	n, m := c.data.N(), c.data.M()
	return int64(c.q) * (int64(m)*int64(m)*8 + int64(m)*8 + int64(n)*8)
}
