// Package influence implements the INFL baseline of the paper's Sec 6.2: the
// influence-function method of Koh & Liang extended (as the paper describes)
// from single-sample to multi-sample deletion.
//
// For an L2-regularized empirical risk h(w) = (1/n)Σ hᵢ(w) + (λ/2)‖w‖²
// minimized at w*, removing the sample set R perturbs the optimum by
// (first-order Taylor expansion of the optimality condition):
//
//	w_new ≈ w* + H⁻¹ · (1/(n−Δn)) · Σ_{i∈R} ∇hᵢ(w*)   −   correction terms
//
// where H is the Hessian of the objective at w*. Concretely we solve the
// stationarity of the leave-R-out objective linearized at w*:
//
//	∇g(w*) + H_g·(w_new − w*) = 0  ⇒  w_new = w* − H_g⁻¹ ∇g(w*)
//
// with g the objective over the surviving samples and H_g its Hessian at w*
// (one Newton step from w*). This is exactly the "lower-order Taylor terms
// only" approximation the paper attributes to INFL, and it degrades as Δn
// grows — the effect Table 4 and Figures 1-3 measure.
package influence

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
	"repro/internal/mat"
)

// UpdateLinear computes the INFL parameter update for ridge linear
// regression: one Newton step of the leave-R-out objective from w*.
// The Hessian of g is (2/(n−Δn))·Σ_{i∉R} xᵢxᵢᵀ + λI (exact for quadratics,
// so INFL's error here comes only from w* being an SGD iterate rather than
// the exact optimum).
func UpdateLinear(d *dataset.Dataset, model *gbm.Model, lambda float64, removed []int) (*gbm.Model, error) {
	if d.Task != dataset.Regression {
		return nil, fmt.Errorf("influence: UpdateLinear requires regression data, got %v", d.Task)
	}
	rm, err := gbm.RemovalSet(d.N(), removed)
	if err != nil {
		return nil, err
	}
	n, m := d.N(), d.M()
	nEff := n - len(rm)
	if nEff <= 0 {
		return nil, fmt.Errorf("influence: removal leaves no samples")
	}
	w := model.W.Row(0)
	hess := mat.NewDense(m, m)
	grad := make([]float64, m)
	for i := 0; i < n; i++ {
		if rm[i] {
			continue
		}
		xi := d.X.Row(i)
		mat.AddOuter(hess, xi, xi, 2.0/float64(nEff))
		mat.Axpy(grad, 2.0/float64(nEff)*(mat.Dot(xi, w)-d.Y[i]), xi)
	}
	for j := 0; j < m; j++ {
		hess.Add(j, j, lambda)
		grad[j] += lambda * w[j]
	}
	step, err := solveSPD(hess, grad)
	if err != nil {
		return nil, err
	}
	out := mat.CloneVec(w)
	mat.Axpy(out, -1, step)
	return &gbm.Model{Task: dataset.Regression, W: mat.NewDenseData(1, m, out)}, nil
}

// UpdateLogistic computes the INFL update for binary logistic regression:
// one Newton step of the leave-R-out logistic objective from w*, using the
// exact Hessian (1/(n−Δn))·Σ_{i∉R} σ′·xᵢxᵢᵀ + λI at w*.
func UpdateLogistic(d *dataset.Dataset, model *gbm.Model, lambda float64, removed []int) (*gbm.Model, error) {
	if d.Task != dataset.BinaryClassification {
		return nil, fmt.Errorf("influence: UpdateLogistic requires binary data, got %v", d.Task)
	}
	rm, err := gbm.RemovalSet(d.N(), removed)
	if err != nil {
		return nil, err
	}
	n, m := d.N(), d.M()
	nEff := n - len(rm)
	if nEff <= 0 {
		return nil, fmt.Errorf("influence: removal leaves no samples")
	}
	w := model.W.Row(0)
	hess := mat.NewDense(m, m)
	grad := make([]float64, m)
	inv := 1.0 / float64(nEff)
	for i := 0; i < n; i++ {
		if rm[i] {
			continue
		}
		xi := d.X.Row(i)
		yi := d.Y[i]
		z := yi * mat.Dot(xi, w)
		// ∇hᵢ = −yᵢ·xᵢ·f(z); ∇²hᵢ = σ(z)σ(−z)·xᵢxᵢᵀ.
		fv := interp.F(z)
		mat.Axpy(grad, -inv*yi*fv, xi)
		mat.AddOuter(hess, xi, xi, inv*interp.Sigmoid(z)*interp.Sigmoid(-z))
	}
	for j := 0; j < m; j++ {
		hess.Add(j, j, lambda)
		grad[j] += lambda * w[j]
	}
	step, err := solveSPD(hess, grad)
	if err != nil {
		return nil, err
	}
	out := mat.CloneVec(w)
	mat.Axpy(out, -1, step)
	return &gbm.Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, out)}, nil
}

// UpdateMultinomial computes the INFL update for multinomial logistic
// regression using the block-diagonal Hessian approximation (per-class
// pₖ(1−pₖ) curvature; cross-class blocks dropped), a standard practical
// simplification that keeps the solve at q independent m×m systems.
func UpdateMultinomial(d *dataset.Dataset, model *gbm.Model, lambda float64, removed []int) (*gbm.Model, error) {
	if d.Task != dataset.MultiClassification {
		return nil, fmt.Errorf("influence: UpdateMultinomial requires multiclass data, got %v", d.Task)
	}
	rm, err := gbm.RemovalSet(d.N(), removed)
	if err != nil {
		return nil, err
	}
	n, m := d.N(), d.M()
	q := model.W.Rows()
	nEff := n - len(rm)
	if nEff <= 0 {
		return nil, fmt.Errorf("influence: removal leaves no samples")
	}
	inv := 1.0 / float64(nEff)
	out := model.W.Clone()
	logits := make([]float64, q)
	probs := make([]float64, q)
	hess := make([]*mat.Dense, q)
	grads := make([][]float64, q)
	for k := 0; k < q; k++ {
		hess[k] = mat.NewDense(m, m)
		grads[k] = make([]float64, m)
	}
	for i := 0; i < n; i++ {
		if rm[i] {
			continue
		}
		xi := d.X.Row(i)
		for k := 0; k < q; k++ {
			logits[k] = mat.Dot(model.W.Row(k), xi)
		}
		gbm.Softmax(probs, logits)
		yi := int(d.Y[i])
		for k := 0; k < q; k++ {
			coef := probs[k]
			if k == yi {
				coef -= 1
			}
			mat.Axpy(grads[k], inv*coef, xi)
			mat.AddOuter(hess[k], xi, xi, inv*probs[k]*(1-probs[k]))
		}
	}
	for k := 0; k < q; k++ {
		for j := 0; j < m; j++ {
			hess[k].Add(j, j, lambda)
			grads[k][j] += lambda * model.W.At(k, j)
		}
		step, err := solveSPD(hess[k], grads[k])
		if err != nil {
			return nil, err
		}
		row := out.Row(k)
		mat.Axpy(row, -1, step)
	}
	return &gbm.Model{Task: dataset.MultiClassification, W: out}, nil
}

// solveSPD solves H·x = b for a symmetric positive definite H, falling back
// to LU if the Cholesky factorization fails due to round-off.
func solveSPD(h *mat.Dense, b []float64) ([]float64, error) {
	if ch, err := mat.NewCholesky(h); err == nil {
		return ch.Solve(b), nil
	}
	lu, err := mat.NewLU(h)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b), nil
}
