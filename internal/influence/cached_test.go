package influence

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// Cached implements the paper's INFL (full-data Hessian at w*, never
// recomputed), while the direct Update* functions take an exact-Hessian
// Newton step. The tests verify the two coincide for small removals and that
// Cached — the weaker approximation — drifts further from the retrained
// model as the removal grows (the paper's central claim about INFL).

func TestCachedCloseToDirectOnSmallRemoval(t *testing.T) {
	d, err := dataset.GenerateRegression("cl", 150, 5, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.02, Lambda: 0.05, BatchSize: 50, Iterations: 400, Seed: 2}
	sched, err := gbm.NewSchedule(150, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainLinear(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewCached(d, minit, cfg.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(150, 2, 3)
	want, err := UpdateLinear(d, minit, cfg.Lambda, removed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny removal: the Hessian barely changes, both forms nearly agree.
	if cos := mat.CosineSimilarity(got.Vec(), want.Vec()); cos < 0.999 {
		t.Fatalf("cached vs direct cosine %v on tiny removal", cos)
	}
}

func TestCachedDegradesFasterThanDirect(t *testing.T) {
	// With 30% of the samples removed, the full-data Hessian is a poor model
	// of the leave-R-out curvature: Cached must be further from the
	// retrained model than the exact-Hessian Newton step.
	d, err := dataset.GenerateBinary("cd", 300, 6, 1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.01, BatchSize: 50, Iterations: 800, Seed: 5}
	sched, err := gbm.NewSchedule(300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainLogistic(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewCached(d, minit, cfg.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(300, 90, 6)
	rm, _ := gbm.RemovalSet(300, removed)
	retrained, err := gbm.TrainLogistic(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := UpdateLogistic(d, minit, cfg.Lambda, removed)
	if err != nil {
		t.Fatal(err)
	}
	infl, err := cached.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	dDirect := mat.Distance(direct.Vec(), retrained.Vec())
	dINFL := mat.Distance(infl.Vec(), retrained.Vec())
	if dINFL < dDirect {
		t.Fatalf("INFL (%v) should be worse than the exact Newton step (%v) at 30%% removal", dINFL, dDirect)
	}
}

func TestCachedMulticlassRuns(t *testing.T) {
	d, err := dataset.GenerateMulticlass("cm", 210, 5, 3, 2.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.05, BatchSize: 30, Iterations: 300, Seed: 8}
	sched, err := gbm.NewSchedule(210, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minit, err := gbm.TrainMultinomial(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewCached(d, minit, cfg.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	removed := pickRemoved(210, 4, 9)
	got, err := cached.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	rm, _ := gbm.RemovalSet(210, removed)
	want, err := gbm.TrainMultinomial(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	if cos := mat.CosineSimilarity(got.Vec(), want.Vec()); cos < 0.97 {
		t.Fatalf("INFL multiclass cosine %v on small removal", cos)
	}
	if cached.FootprintBytes() <= 0 {
		t.Fatal("footprint must be positive")
	}
}

func TestCachedValidation(t *testing.T) {
	d, err := dataset.GenerateRegression("cv", 20, 3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := &gbm.Model{Task: dataset.Regression, W: mat.NewDense(1, 3)}
	if _, err := NewCached(d, w, -1); err == nil {
		t.Fatal("expected lambda error")
	}
	c, err := NewCached(d, w, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update([]int{50}); err == nil {
		t.Fatal("expected range error")
	}
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	if _, err := c.Update(all); err == nil {
		t.Fatal("expected empty-remainder error")
	}
}
