package gbm

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
)

func linearFixture(t *testing.T, n, m int) (*dataset.Dataset, Config, *Schedule) {
	t.Helper()
	d, err := dataset.GenerateRegression("fix", n, m, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.01, Lambda: 0.01, BatchSize: 32, Iterations: 400, Seed: 2}
	sched, err := NewSchedule(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, cfg, sched
}

func binaryFixture(t *testing.T, n, m int) (*dataset.Dataset, Config, *Schedule) {
	t.Helper()
	d, err := dataset.GenerateBinary("fixb", n, m, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.05, Lambda: 0.01, BatchSize: 32, Iterations: 500, Seed: 4}
	sched, err := NewSchedule(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, cfg, sched
}

func TestConfigValidate(t *testing.T) {
	good := Config{Eta: 0.1, Lambda: 0.1, BatchSize: 10, Iterations: 5}
	if err := good.Validate(100); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Eta: 0, Lambda: 0.1, BatchSize: 10, Iterations: 5},
		{Eta: 0.1, Lambda: -1, BatchSize: 10, Iterations: 5},
		{Eta: 0.1, Lambda: 0.1, BatchSize: 0, Iterations: 5},
		{Eta: 0.1, Lambda: 0.1, BatchSize: 200, Iterations: 5},
		{Eta: 0.1, Lambda: 0.1, BatchSize: 10, Iterations: 0},
	}
	for i, c := range bad {
		if err := c.Validate(100); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestScheduleDeterminismAndBounds(t *testing.T) {
	cfg := Config{Eta: 0.1, Lambda: 0, BatchSize: 8, Iterations: 20, Seed: 9}
	s1, err := NewSchedule(50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSchedule(50, cfg)
	for tIdx := 0; tIdx < 20; tIdx++ {
		b1, b2 := s1.Batch(tIdx), s2.Batch(tIdx)
		if len(b1) != 8 {
			t.Fatalf("batch size %d", len(b1))
		}
		seen := map[int]bool{}
		for k := range b1 {
			if b1[k] != b2[k] {
				t.Fatal("schedule not deterministic")
			}
			if b1[k] < 0 || b1[k] >= 50 {
				t.Fatalf("index %d out of range", b1[k])
			}
			if seen[b1[k]] {
				t.Fatal("duplicate index within a batch")
			}
			seen[b1[k]] = true
		}
	}
	if s1.FootprintBytes() != 20*8*8 {
		t.Fatalf("FootprintBytes = %d", s1.FootprintBytes())
	}
}

func TestScheduleFullBatchGD(t *testing.T) {
	cfg := Config{Eta: 0.1, Lambda: 0, BatchSize: 10, Iterations: 3, Seed: 1}
	s, err := NewSchedule(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tIdx := 0; tIdx < 3; tIdx++ {
		b := s.Batch(tIdx)
		for i := range b {
			if b[i] != i {
				t.Fatal("full-batch schedule should be the identity")
			}
		}
	}
}

func TestSurvivorCountAndRemovalSet(t *testing.T) {
	cfg := Config{Eta: 0.1, Lambda: 0, BatchSize: 5, Iterations: 1, Seed: 1}
	s, err := NewSchedule(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RemovalSet(5, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SurvivorCount(0, rm); got != 3 {
		t.Fatalf("SurvivorCount = %d", got)
	}
	if _, err := RemovalSet(5, []int{7}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestTrainLinearConverges(t *testing.T) {
	d, cfg, sched := linearFixture(t, 400, 6)
	model, err := TrainLinear(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	zeroLoss := LinearObjective(d, make([]float64, 6), cfg.Lambda)
	loss := LinearObjective(d, model.W.Row(0), cfg.Lambda)
	if loss > zeroLoss/4 {
		t.Fatalf("trained loss %v vs zero-model loss %v", loss, zeroLoss)
	}
}

func TestTrainLinearMatchesClosedFormOnGD(t *testing.T) {
	// With full-batch GD and enough iterations, mb-SGD must approach the
	// ridge closed-form solution.
	d, err := dataset.GenerateRegression("gd", 100, 4, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.05, Lambda: 0.1, BatchSize: 100, Iterations: 3000, Seed: 1}
	sched, err := NewSchedule(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainLinear(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: (2/n·XᵀX + λI) w = 2/n·XᵀY.
	g := d.X.Gram().Scale(2.0 / 100)
	for i := 0; i < 4; i++ {
		g.Add(i, i, cfg.Lambda)
	}
	ch, err := mat.NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	rhs := d.X.MulVecT(d.Y)
	mat.ScaleVec(rhs, 2.0/100)
	want := ch.Solve(rhs)
	if dist := mat.Distance(model.W.Row(0), want); dist > 1e-4*(1+mat.Norm2(want)) {
		t.Fatalf("GD differs from closed form by %v", dist)
	}
}

func TestTrainLinearWithRemovalMatchesRetrainOnSubset(t *testing.T) {
	// BaseL with an exclusion set must equal training on the physically
	// reduced dataset when the schedule is the trivial full-batch one.
	d, err := dataset.GenerateRegression("rm", 60, 3, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.02, Lambda: 0.05, BatchSize: 60, Iterations: 200, Seed: 3}
	sched, err := NewSchedule(60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	removedIdx := []int{5, 17, 40}
	rm, _ := RemovalSet(60, removedIdx)
	got, err := TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.Remove(removedIdx)
	if err != nil {
		t.Fatal(err)
	}
	cfgSub := cfg
	cfgSub.BatchSize = sub.N()
	schedSub, err := NewSchedule(sub.N(), cfgSub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TrainLinear(sub, cfgSub, schedSub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist := mat.Distance(got.W.Row(0), want.W.Row(0)); dist > 1e-10 {
		t.Fatalf("exclusion-based and physical retraining differ by %v", dist)
	}
}

func TestTrainLogisticConvergesAndClassifies(t *testing.T) {
	d, cfg, sched := binaryFixture(t, 400, 6)
	model, err := TrainLogistic(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.PredictBinary(d.X)
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(preds))
	if acc < 0.85 {
		t.Fatalf("training accuracy %v too low", acc)
	}
	// Loss must beat the zero model.
	if LogisticObjective(d, model.W.Row(0), cfg.Lambda) >= LogisticObjective(d, make([]float64, 6), cfg.Lambda) {
		t.Fatal("logistic training did not reduce the objective")
	}
}

func TestTrainLogisticRejectsWrongTask(t *testing.T) {
	d, cfg, sched := linearFixture(t, 50, 3)
	if _, err := TrainLogistic(d, cfg, sched, nil); err == nil {
		t.Fatal("expected task error")
	}
	if _, err := TrainMultinomial(d, cfg, sched, nil); err == nil {
		t.Fatal("expected task error")
	}
}

func TestTrainMultinomialConverges(t *testing.T) {
	d, err := dataset.GenerateMulticlass("mc", 600, 8, 4, 2.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.05, Lambda: 0.01, BatchSize: 64, Iterations: 600, Seed: 6}
	sched, err := NewSchedule(600, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainMultinomial(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.PredictMulticlass(d.X)
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 600; acc < 0.8 {
		t.Fatalf("multiclass accuracy %v too low", acc)
	}
	if MultinomialObjective(d, model.W, cfg.Lambda) >= MultinomialObjective(d, mat.NewDense(4, 8), cfg.Lambda) {
		t.Fatal("multinomial training did not reduce the objective")
	}
}

func TestTrainLogisticSparse(t *testing.T) {
	d, err := dataset.GenerateSparseBinary("sp", 200, 500, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.1, Lambda: 0.01, BatchSize: 32, Iterations: 300, Seed: 8}
	sched, err := NewSchedule(200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainLogisticSparse(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.PredictBinarySparse(d)
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.8 {
		t.Fatalf("sparse accuracy %v too low", acc)
	}
}

func TestEmptyBatchOnlyRegularizes(t *testing.T) {
	// Remove every sample in the dataset except one that never appears in the
	// (single) batch — impossible with full coverage, so instead remove all
	// batch members and check the decay-only path.
	d, err := dataset.GenerateRegression("e", 10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eta: 0.1, Lambda: 0.5, BatchSize: 10, Iterations: 1, Seed: 1}
	sched, err := NewSchedule(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := map[int]bool{}
	for i := 0; i < 10; i++ {
		all[i] = true
	}
	model, err := TrainLinear(d, cfg, sched, all)
	if err != nil {
		t.Fatal(err)
	}
	// w0 = 0 so one decay step keeps it at 0.
	if mat.Norm2(model.W.Row(0)) != 0 {
		t.Fatal("decay-only step from zero should stay zero")
	}
}

func TestPredictLinear(t *testing.T) {
	w := mat.NewDenseData(1, 2, []float64{2, -1})
	model := &Model{Task: dataset.Regression, W: w}
	x := mat.NewDenseData(2, 2, []float64{1, 1, 3, 0})
	preds := model.PredictLinear(x)
	if preds[0] != 1 || preds[1] != 6 {
		t.Fatalf("PredictLinear = %v", preds)
	}
	if len(model.Vec()) != 2 {
		t.Fatal("Vec length")
	}
	c := model.Clone()
	c.W.Set(0, 0, 99)
	if model.W.At(0, 0) == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestSoftmaxAndLogSumExp(t *testing.T) {
	p := make([]float64, 3)
	Softmax(p, []float64{1000, 1000, 1000}) // stability check
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("Softmax = %v", p)
		}
	}
	if math.Abs(logSumExp([]float64{0, 0})-math.Log(2)) > 1e-12 {
		t.Fatal("logSumExp wrong")
	}
}

func TestObjectiveDecreasesMonotonicallyUnderGD(t *testing.T) {
	// Strong-convexity sanity check from Sec 4.3: under GD with η < 1/L the
	// objective decreases every step. Track it across checkpoints.
	d, err := dataset.GenerateRegression("mono", 80, 3, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.1
	prev := math.Inf(1)
	for _, iters := range []int{1, 5, 20, 100, 400} {
		cfg := Config{Eta: 0.02, Lambda: lambda, BatchSize: 80, Iterations: iters, Seed: 1}
		sched, err := NewSchedule(80, cfg)
		if err != nil {
			t.Fatal(err)
		}
		model, err := TrainLinear(d, cfg, sched, nil)
		if err != nil {
			t.Fatal(err)
		}
		loss := LinearObjective(d, model.W.Row(0), lambda)
		if loss > prev+1e-12 {
			t.Fatalf("objective increased: %v -> %v at %d iters", prev, loss, iters)
		}
		prev = loss
	}
}

func TestScheduleMismatchErrors(t *testing.T) {
	d, cfg, _ := linearFixture(t, 50, 3)
	other, err := NewSchedule(40, Config{Eta: 0.1, Lambda: 0, BatchSize: 10, Iterations: cfg.Iterations, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainLinear(d, cfg, other, nil); err == nil {
		t.Fatal("expected schedule size mismatch error")
	}
	short, err := NewSchedule(50, Config{Eta: 0.1, Lambda: 0, BatchSize: 10, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainLinear(d, cfg, short, nil); err == nil {
		t.Fatal("expected schedule length error")
	}
	if _, err := TrainLinear(d, cfg, nil, nil); err == nil {
		t.Fatal("expected nil schedule error")
	}
}
