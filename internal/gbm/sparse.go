package gbm

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/mat"
)

// TrainLogisticSparse runs mb-SGD binary logistic regression over a CSR
// dataset (the RCV1-style path of Sec 5.3). removed may be nil, in which
// case this is the sparse BaseL retrainer.
func TrainLogisticSparse(d *dataset.SparseDataset, cfg Config, sched *Schedule, removed map[int]bool) (*Model, error) {
	if err := cfg.Validate(d.N()); err != nil {
		return nil, err
	}
	if sched == nil || sched.N() != d.N() || sched.Iterations() < cfg.Iterations {
		return nil, fmt.Errorf("gbm: schedule incompatible with sparse dataset")
	}
	if d.Task != dataset.BinaryClassification {
		return nil, fmt.Errorf("gbm: TrainLogisticSparse requires binary labels, got %v", d.Task)
	}
	mask := removalMask(d.N(), removed)
	m := d.M()
	w := make([]float64, m)
	step := make([]float64, m)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		mat.ZeroVec(step)
		bU := 0
		for _, i := range batch {
			if mask != nil && mask[i] {
				continue
			}
			bU++
			yi := d.Y[i]
			fv := interp.F(yi * d.X.RowDot(i, w))
			d.X.AddScaledRow(step, i, yi*fv)
		}
		decay := 1 - cfg.Eta*cfg.Lambda
		if bU == 0 {
			mat.ScaleVec(w, decay)
			continue
		}
		// Sparse step: decay touches all coordinates, the data term only the
		// union of the batch rows' supports (already accumulated densely in
		// step; m is large but this mirrors scipy's dense axpy fallback).
		f := cfg.Eta / float64(bU)
		for j := range w {
			w[j] = decay*w[j] + f*step[j]
		}
	}
	return &Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}, nil
}

// PredictBinarySparse returns ±1 predictions for a CSR feature matrix.
func (m *Model) PredictBinarySparse(d *dataset.SparseDataset) []float64 {
	w := m.W.Row(0)
	out := make([]float64, d.N())
	for i := range out {
		if d.X.RowDot(i, w) >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
