package gbm

import (
	"fmt"
	"math/rand"
)

// Schedule is a precomputed sequence of mini-batches: Batches[t] holds the
// original-dataset indices of batch B(t). Sharing the schedule between the
// initial training run, the BaseL retraining run and the PrIU update is what
// makes the three directly comparable (the paper's experimental protocol).
type Schedule struct {
	n       int
	batches [][]int
}

// NewSchedule samples Iterations mini-batches of size BatchSize uniformly
// without replacement within each batch, deterministically from cfg.Seed.
func NewSchedule(n int, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{n: n, batches: make([][]int, cfg.Iterations)}
	for t := range s.batches {
		b := make([]int, cfg.BatchSize)
		if cfg.BatchSize == n {
			// Full-batch GD: the batch is the whole dataset, in order.
			for i := range b {
				b[i] = i
			}
		} else {
			perm := rng.Perm(n)
			copy(b, perm[:cfg.BatchSize])
		}
		s.batches[t] = b
	}
	return s, nil
}

// Iterations returns the number of scheduled batches.
func (s *Schedule) Iterations() int { return len(s.batches) }

// N returns the dataset size the schedule was built for.
func (s *Schedule) N() int { return s.n }

// Batch returns the index slice of batch t (aliased, do not modify).
func (s *Schedule) Batch(t int) []int { return s.batches[t] }

// SurvivorCount returns how many members of batch t survive the removal set.
func (s *Schedule) SurvivorCount(t int, removed map[int]bool) int {
	c := 0
	for _, i := range s.batches[t] {
		if !removed[i] {
			c++
		}
	}
	return c
}

// FootprintBytes estimates the schedule's memory use (part of the BaseL
// accounting in the Table 3 experiment).
func (s *Schedule) FootprintBytes() int64 {
	var total int64
	for _, b := range s.batches {
		total += int64(len(b)) * 8
	}
	return total
}

// RemovalSet converts a list of removed sample indices into the set form the
// trainers accept, validating ranges.
func RemovalSet(n int, removed []int) (map[int]bool, error) {
	set := make(map[int]bool, len(removed))
	for _, r := range removed {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("gbm: removed index %d out of range [0,%d)", r, n)
		}
		set[r] = true
	}
	return set, nil
}

// removalMask converts a removal set into a dense boolean mask for O(1)
// membership checks in the per-batch-member hot loops. A nil set yields a
// nil mask (indexing a nil mask is avoided by the callers' length check).
func removalMask(n int, removed map[int]bool) []bool {
	if len(removed) == 0 {
		return nil
	}
	mask := make([]bool, n)
	for i, v := range removed {
		if v && i >= 0 && i < n {
			mask[i] = true
		}
	}
	return mask
}
