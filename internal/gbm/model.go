package gbm

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/mat"
)

// Model holds trained parameters. For linear and binary-logistic regression
// W has one row; for multinomial logistic regression W is q×m (one weight
// vector per class), matching the paper's w = vec([w1..wq]).
type Model struct {
	Task dataset.Task
	// W is the parameter matrix: 1×m (linear/binary) or q×m (multinomial).
	W *mat.Dense
}

// Vec returns the flattened parameter vector vec([w1..wq]) (aliased).
func (m *Model) Vec() []float64 { return m.W.Data() }

// Clone deep-copies the model.
func (m *Model) Clone() *Model { return &Model{Task: m.Task, W: m.W.Clone()} }

// PredictLinear returns xᵀw for every row of x.
func (m *Model) PredictLinear(x *mat.Dense) []float64 {
	return x.MulVec(m.W.Row(0))
}

// PredictBinary returns ±1 class predictions using sign(xᵀw).
func (m *Model) PredictBinary(x *mat.Dense) []float64 {
	scores := x.MulVec(m.W.Row(0))
	for i, s := range scores {
		if s >= 0 {
			scores[i] = 1
		} else {
			scores[i] = -1
		}
	}
	return scores
}

// PredictMulticlass returns argmax_k wₖᵀx class indices.
func (m *Model) PredictMulticlass(x *mat.Dense) []float64 {
	n := x.Rows()
	q := m.W.Rows()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < q; k++ {
			s := mat.Dot(m.W.Row(k), row)
			if s > bestScore {
				best, bestScore = k, s
			}
		}
		out[i] = float64(best)
	}
	return out
}

// LinearObjective evaluates the paper's Eq 2: mean squared residual plus
// (λ/2)‖w‖².
func LinearObjective(d *dataset.Dataset, w []float64, lambda float64) float64 {
	n := d.N()
	var loss float64
	for i := 0; i < n; i++ {
		r := d.Y[i] - mat.Dot(d.X.Row(i), w)
		loss += r * r
	}
	loss /= float64(n)
	nw := mat.Norm2(w)
	return loss + lambda/2*nw*nw
}

// LogisticObjective evaluates the paper's Eq 3: mean logistic loss plus
// (λ/2)‖w‖² for ±1 labels.
func LogisticObjective(d *dataset.Dataset, w []float64, lambda float64) float64 {
	n := d.N()
	var loss float64
	for i := 0; i < n; i++ {
		z := d.Y[i] * mat.Dot(d.X.Row(i), w)
		// ln(1+e^{−z}) computed stably.
		if z > 0 {
			loss += math.Log1p(math.Exp(-z))
		} else {
			loss += -z + math.Log1p(math.Exp(z))
		}
	}
	loss /= float64(n)
	nw := mat.Norm2(w)
	return loss + lambda/2*nw*nw
}

// MultinomialObjective evaluates the paper's Eq 4: mean cross-entropy of the
// softmax plus (λ/2)‖vec(W)‖².
func MultinomialObjective(d *dataset.Dataset, w *mat.Dense, lambda float64) float64 {
	n := d.N()
	q := w.Rows()
	var loss float64
	logits := make([]float64, q)
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		for k := 0; k < q; k++ {
			logits[k] = mat.Dot(w.Row(k), row)
		}
		loss += logSumExp(logits) - logits[int(d.Y[i])]
	}
	loss /= float64(n)
	nw := mat.Norm2(w.Data())
	return loss + lambda/2*nw*nw
}

// logSumExp computes ln Σ e^{z_k} stably.
func logSumExp(z []float64) float64 {
	mx := z[0]
	for _, v := range z[1:] {
		if v > mx {
			mx = v
		}
	}
	var s float64
	for _, v := range z {
		s += math.Exp(v - mx)
	}
	return mx + math.Log(s)
}

// Softmax fills p with the softmax of the logits z.
func Softmax(p, z []float64) {
	mx := z[0]
	for _, v := range z[1:] {
		if v > mx {
			mx = v
		}
	}
	var s float64
	for k, v := range z {
		e := math.Exp(v - mx)
		p[k] = e
		s += e
	}
	for k := range p {
		p[k] /= s
	}
}

// Sigmoid re-exports the stable logistic sigmoid for callers that have a
// gbm dependency only.
func Sigmoid(x float64) float64 { return interp.Sigmoid(x) }
