package gbm

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/mat"
)

// Trainers implement the update rules of the paper's Eq 5 (linear), Eq 6
// (binary logistic) and the softmax analogue (multinomial), replaying a
// shared Schedule. A non-nil removed set turns a trainer into the BaseL
// retraining baseline: removed samples are excluded from every mini-batch
// and the batch denominator becomes the survivor count B_U^(t) (Eq 12/13).

// TrainLinear runs mb-SGD for ridge linear regression (Eq 5) and returns the
// final model. removed may be nil.
func TrainLinear(d *dataset.Dataset, cfg Config, sched *Schedule, removed map[int]bool) (*Model, error) {
	if err := checkTrainArgs(d, cfg, sched); err != nil {
		return nil, err
	}
	mask := removalMask(d.N(), removed)
	m := d.M()
	w := make([]float64, m)
	grad := make([]float64, m)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		mat.ZeroVec(grad)
		bU := 0
		for _, i := range batch {
			if mask != nil && mask[i] {
				continue
			}
			bU++
			xi := d.X.Row(i)
			r := mat.Dot(xi, w) - d.Y[i]
			mat.Axpy(grad, r, xi)
		}
		decay := 1 - cfg.Eta*cfg.Lambda
		if bU == 0 {
			// Every batch member was removed: only the regularizer acts.
			mat.ScaleVec(w, decay)
			continue
		}
		f := 2 * cfg.Eta / float64(bU)
		for j := range w {
			w[j] = decay*w[j] - f*grad[j]
		}
	}
	return &Model{Task: dataset.Regression, W: mat.NewDenseData(1, m, w)}, nil
}

// TrainLogistic runs mb-SGD for L2-regularized binary logistic regression
// with the exact sigmoid (Eq 6). removed may be nil.
func TrainLogistic(d *dataset.Dataset, cfg Config, sched *Schedule, removed map[int]bool) (*Model, error) {
	if err := checkTrainArgs(d, cfg, sched); err != nil {
		return nil, err
	}
	if d.Task != dataset.BinaryClassification {
		return nil, fmt.Errorf("gbm: TrainLogistic requires binary labels, got %v", d.Task)
	}
	mask := removalMask(d.N(), removed)
	m := d.M()
	w := make([]float64, m)
	step := make([]float64, m)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		mat.ZeroVec(step)
		bU := 0
		for _, i := range batch {
			if mask != nil && mask[i] {
				continue
			}
			bU++
			xi := d.X.Row(i)
			yi := d.Y[i]
			// f(y·wᵀx) = 1 − σ(y·wᵀx); gradient contribution −y·x·f(…).
			fv := interp.F(yi * mat.Dot(xi, w))
			mat.Axpy(step, yi*fv, xi)
		}
		decay := 1 - cfg.Eta*cfg.Lambda
		if bU == 0 {
			mat.ScaleVec(w, decay)
			continue
		}
		f := cfg.Eta / float64(bU)
		for j := range w {
			w[j] = decay*w[j] + f*step[j]
		}
	}
	return &Model{Task: dataset.BinaryClassification, W: mat.NewDenseData(1, m, w)}, nil
}

// TrainMultinomial runs mb-SGD for L2-regularized multinomial logistic
// regression with the exact softmax. removed may be nil.
func TrainMultinomial(d *dataset.Dataset, cfg Config, sched *Schedule, removed map[int]bool) (*Model, error) {
	if err := checkTrainArgs(d, cfg, sched); err != nil {
		return nil, err
	}
	if d.Task != dataset.MultiClassification {
		return nil, fmt.Errorf("gbm: TrainMultinomial requires multiclass labels, got %v", d.Task)
	}
	mask := removalMask(d.N(), removed)
	m, q := d.M(), d.Classes
	w := mat.NewDense(q, m)
	grad := mat.NewDense(q, m)
	logits := make([]float64, q)
	probs := make([]float64, q)
	for t := 0; t < cfg.Iterations; t++ {
		batch := sched.Batch(t)
		grad.Zero()
		bU := 0
		for _, i := range batch {
			if mask != nil && mask[i] {
				continue
			}
			bU++
			xi := d.X.Row(i)
			for k := 0; k < q; k++ {
				logits[k] = mat.Dot(w.Row(k), xi)
			}
			Softmax(probs, logits)
			yi := int(d.Y[i])
			for k := 0; k < q; k++ {
				coef := probs[k]
				if k == yi {
					coef -= 1
				}
				mat.Axpy(grad.Row(k), coef, xi)
			}
		}
		decay := 1 - cfg.Eta*cfg.Lambda
		if bU == 0 {
			w.Scale(decay)
			continue
		}
		f := cfg.Eta / float64(bU)
		wd, gd := w.Data(), grad.Data()
		for j := range wd {
			wd[j] = decay*wd[j] - f*gd[j]
		}
	}
	return &Model{Task: dataset.MultiClassification, W: w}, nil
}

func checkTrainArgs(d *dataset.Dataset, cfg Config, sched *Schedule) error {
	if err := cfg.Validate(d.N()); err != nil {
		return err
	}
	if sched == nil {
		return fmt.Errorf("gbm: nil schedule")
	}
	if sched.N() != d.N() {
		return fmt.Errorf("gbm: schedule built for n=%d, dataset has n=%d", sched.N(), d.N())
	}
	if sched.Iterations() < cfg.Iterations {
		return fmt.Errorf("gbm: schedule has %d iterations, config wants %d", sched.Iterations(), cfg.Iterations)
	}
	return nil
}
