// Package gbm implements the gradient-based methods of the paper's Sec 3:
// mini-batch SGD (with GD and SGD as the B=n and B=1 special cases) for
// linear regression, binary logistic regression and multinomial logistic
// regression, all with L2 regularization.
//
// Training is driven by a deterministic batch Schedule so that the retraining
// baseline (BaseL, Sec 6.2) and the incremental PrIU update replay exactly
// the same mini-batches: BaseL "excludes the removed samples from each
// mini-batch", which requires batches to reference original sample indices.
package gbm

import (
	"errors"
	"fmt"
)

// Config holds the hyperparameters of a GBM run (the paper's Table 2 rows).
type Config struct {
	// Eta is the learning rate η (constant across iterations, per Lemma 1's
	// convergence conditions).
	Eta float64
	// Lambda is the L2 regularization rate λ.
	Lambda float64
	// BatchSize is the mini-batch size B.
	BatchSize int
	// Iterations is the total iteration count τ.
	Iterations int
	// Seed drives the batch schedule and any initialization randomness.
	Seed int64
}

// ErrBadConfig reports an invalid hyperparameter combination.
var ErrBadConfig = errors.New("gbm: invalid configuration")

// Validate checks the configuration against a training-set size.
func (c Config) Validate(n int) error {
	if c.Eta <= 0 {
		return fmt.Errorf("%w: eta %v", ErrBadConfig, c.Eta)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("%w: lambda %v", ErrBadConfig, c.Lambda)
	}
	if c.BatchSize < 1 || c.BatchSize > n {
		return fmt.Errorf("%w: batch size %d for n=%d", ErrBadConfig, c.BatchSize, n)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("%w: iterations %d", ErrBadConfig, c.Iterations)
	}
	return nil
}
