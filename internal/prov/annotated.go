package prov

import (
	"fmt"

	"repro/internal/mat"
)

// AnnotatedMatrix is a formal sum Σₖ pₖ ∗ Aₖ of matrices annotated with
// provenance polynomials — the matrix extension of the semiring framework
// (Yan, Tannen & Ives) that PrIU's iteration models (Eq 7/8/10 of the paper)
// are written in. All terms share the same dimensions.
//
// The algebra follows the usual matrix laws, with the crucial annotated
// multiplication law (p∗A)(q∗B) = (p·q)∗(AB). Setting idempotent token
// multiplication (the premise of Theorem 3) caps token exponents at 1.
type AnnotatedMatrix struct {
	rows, cols int
	idempotent bool
	terms      map[string]annTerm
}

type annTerm struct {
	poly Poly
	m    *mat.Dense
}

// NewAnnotatedMatrix returns the zero annotated matrix of the given shape.
// If idempotent is true, all products use idempotent token multiplication.
func NewAnnotatedMatrix(rows, cols int, idempotent bool) *AnnotatedMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("prov: invalid dimensions %dx%d", rows, cols))
	}
	return &AnnotatedMatrix{rows: rows, cols: cols, idempotent: idempotent, terms: map[string]annTerm{}}
}

// Annotate returns the single-term annotated matrix p ∗ a.
func Annotate(p Poly, a *mat.Dense, idempotent bool) *AnnotatedMatrix {
	r, c := a.Dims()
	out := NewAnnotatedMatrix(r, c, idempotent)
	out.addTerm(p, a.Clone())
	return out
}

// Dims returns the shared dimensions of all terms.
func (a *AnnotatedMatrix) Dims() (rows, cols int) { return a.rows, a.cols }

// NumTerms returns the number of distinct provenance annotations.
func (a *AnnotatedMatrix) NumTerms() int { return len(a.terms) }

// addTerm merges p∗m into the term map, grouping by the polynomial's
// canonical rendering. A zero polynomial contributes nothing.
func (a *AnnotatedMatrix) addTerm(p Poly, m *mat.Dense) {
	if p.IsZero() {
		return
	}
	r, c := m.Dims()
	if r != a.rows || c != a.cols {
		panic("prov: term dimension mismatch")
	}
	k := p.String()
	if ex, ok := a.terms[k]; ok {
		ex.m.AddScaled(m, 1)
		return
	}
	a.terms[k] = annTerm{poly: p, m: m}
}

// Plus returns a + b.
func (a *AnnotatedMatrix) Plus(b *AnnotatedMatrix) *AnnotatedMatrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("prov: Plus dimension mismatch")
	}
	out := NewAnnotatedMatrix(a.rows, a.cols, a.idempotent || b.idempotent)
	for _, t := range a.terms {
		out.addTerm(t.poly, t.m.Clone())
	}
	for _, t := range b.terms {
		out.addTerm(t.poly, t.m.Clone())
	}
	return out
}

// Mul returns the annotated product a·b, applying
// (p∗A)(q∗B) = (p·q)∗(AB) pairwise across terms.
func (a *AnnotatedMatrix) Mul(b *AnnotatedMatrix) *AnnotatedMatrix {
	if a.cols != b.rows {
		panic("prov: Mul dimension mismatch")
	}
	out := NewAnnotatedMatrix(a.rows, b.cols, a.idempotent || b.idempotent)
	for _, ta := range a.terms {
		for _, tb := range b.terms {
			out.addTerm(ta.poly.Times(tb.poly, out.idempotent), ta.m.Mul(tb.m))
		}
	}
	return out
}

// ScaleNumeric multiplies every term's matrix by s (a plain real scalar,
// annotated 1_prov) and returns a new annotated matrix.
func (a *AnnotatedMatrix) ScaleNumeric(s float64) *AnnotatedMatrix {
	out := NewAnnotatedMatrix(a.rows, a.cols, a.idempotent)
	for _, t := range a.terms {
		out.addTerm(t.poly, t.m.Clone().Scale(s))
	}
	return out
}

// Eval evaluates the annotated matrix under the valuation v: each monomial
// becomes 0 or its coefficient, and the surviving numeric matrices are
// summed — this is deletion propagation by zeroing-out.
func (a *AnnotatedMatrix) Eval(v Valuation) *mat.Dense {
	out := mat.NewDense(a.rows, a.cols)
	for _, t := range a.terms {
		if c := v.Eval(t.poly); c != 0 {
			out.AddScaled(t.m, float64(c))
		}
	}
	return out
}

// Terms returns the (polynomial, matrix) pairs in canonical order of the
// polynomial rendering; matrices are aliased, not copied.
func (a *AnnotatedMatrix) Terms() []struct {
	Poly   Poly
	Matrix *mat.Dense
} {
	keys := make([]string, 0, len(a.terms))
	for k := range a.terms {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]struct {
		Poly   Poly
		Matrix *mat.Dense
	}, len(keys))
	for i, k := range keys {
		out[i].Poly = a.terms[k].poly
		out[i].Matrix = a.terms[k].m
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// DecomposeRows returns the provenance-annotated decomposition of the
// feature matrix X described in Sec 4.1 of the paper:
// X = Σᵢ pᵢ ∗ (eᵢ·xᵢ) where row i is annotated with token i. The result has
// one term per row.
func DecomposeRows(x *mat.Dense, idempotent bool) *AnnotatedMatrix {
	rows, cols := x.Dims()
	out := NewAnnotatedMatrix(rows, cols, idempotent)
	for i := 0; i < rows; i++ {
		ri := mat.NewDense(rows, cols)
		copy(ri.Row(i), x.Row(i))
		out.addTerm(TokenPoly(Token(i)), ri)
	}
	return out
}
