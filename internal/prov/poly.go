// Package prov implements the provenance semiring framework of Green,
// Karvounarakis & Tannen extended to matrix algebra (Yan, Tannen & Ives),
// which is the theoretical backbone of PrIU (Sec 4.1 of the paper).
//
// Training samples are annotated with provenance tokens; carrying them
// through the gradient-based update rules yields model parameters expressed
// as sums of (provenance polynomial ∗ matrix) terms. Deleting samples is
// then "zeroing out" their tokens: a token set to 0_prov kills every term it
// appears in, a token set to 1_prov keeps the term's numeric value.
//
// The package provides:
//   - Token, Monomial and Poly — the semiring N[T] of provenance polynomials,
//     with an idempotent-multiplication variant (the assumption under which
//     Theorem 3 guarantees convergence of the annotated iterations);
//   - AnnotatedMatrix — formal sums Σ pₖ ∗ Aₖ with the algebra of the matrix
//     extension, including the key law (p∗A)(q∗B) = (p·q)∗(AB);
//   - Valuation — the assignment of tokens to {0_prov, 1_prov} that performs
//     deletion propagation.
package prov

import (
	"fmt"
	"sort"
	"strings"
)

// Token is a provenance token identifying one training sample. Tokens are
// small non-negative integers (the sample index).
type Token int

// Monomial is a product of tokens with multiplicities, e.g. p²q. The zero
// value is the empty monomial, i.e. the multiplicative identity 1.
type Monomial struct {
	// factors maps token -> exponent (> 0).
	factors map[Token]int
}

// NewMonomial builds a monomial from the given tokens; repeated tokens
// accumulate exponents.
func NewMonomial(tokens ...Token) Monomial {
	m := Monomial{factors: make(map[Token]int, len(tokens))}
	for _, t := range tokens {
		m.factors[t]++
	}
	return m
}

// One returns the empty monomial (multiplicative identity).
func One() Monomial { return Monomial{} }

// Degree returns the total degree of the monomial.
func (m Monomial) Degree() int {
	var d int
	for _, e := range m.factors {
		d += e
	}
	return d
}

// Exponent returns the exponent of token t in the monomial.
func (m Monomial) Exponent(t Token) int { return m.factors[t] }

// Tokens returns the distinct tokens in ascending order.
func (m Monomial) Tokens() []Token {
	out := make([]Token, 0, len(m.factors))
	for t := range m.factors {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Times returns the product of two monomials. If idempotent is true, token
// multiplication is idempotent (p·p = p), the assumption of Theorem 3 under
// which the provenance-annotated iterations converge; exponents are then
// capped at 1.
func (m Monomial) Times(o Monomial, idempotent bool) Monomial {
	out := Monomial{factors: make(map[Token]int, len(m.factors)+len(o.factors))}
	for t, e := range m.factors {
		out.factors[t] += e
	}
	for t, e := range o.factors {
		out.factors[t] += e
	}
	if idempotent {
		for t := range out.factors {
			out.factors[t] = 1
		}
	}
	return out
}

// key renders a canonical map key for the monomial.
func (m Monomial) key() string {
	if len(m.factors) == 0 {
		return "1"
	}
	toks := m.Tokens()
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "p%d^%d", t, m.factors[t])
	}
	return sb.String()
}

// String renders the monomial in the paper's notation (e.g. "p1^2·p3").
func (m Monomial) String() string {
	if len(m.factors) == 0 {
		return "1"
	}
	toks := m.Tokens()
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		if e := m.factors[t]; e == 1 {
			parts = append(parts, fmt.Sprintf("p%d", t))
		} else {
			parts = append(parts, fmt.Sprintf("p%d^%d", t, m.factors[t]))
		}
	}
	return strings.Join(parts, "·")
}

// Poly is a provenance polynomial in N[T]: a finite sum of monomials with
// natural-number coefficients. The zero value is the zero polynomial 0_prov.
type Poly struct {
	terms map[string]polyTerm
}

type polyTerm struct {
	mono  Monomial
	coeff int
}

// Zero returns the zero polynomial 0_prov (absence).
func Zero() Poly { return Poly{} }

// OnePoly returns the polynomial 1_prov (neutral presence).
func OnePoly() Poly { return PolyFromMonomial(One(), 1) }

// TokenPoly returns the polynomial consisting of the single token t.
func TokenPoly(t Token) Poly { return PolyFromMonomial(NewMonomial(t), 1) }

// PolyFromMonomial returns coeff·mono as a polynomial.
func PolyFromMonomial(mono Monomial, coeff int) Poly {
	if coeff == 0 {
		return Poly{}
	}
	p := Poly{terms: make(map[string]polyTerm, 1)}
	p.terms[mono.key()] = polyTerm{mono: mono, coeff: coeff}
	return p
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// IsOne reports whether p is exactly 1_prov.
func (p Poly) IsOne() bool {
	if len(p.terms) != 1 {
		return false
	}
	t, ok := p.terms["1"]
	return ok && t.coeff == 1
}

// NumTerms returns the number of monomials with non-zero coefficient.
func (p Poly) NumTerms() int { return len(p.terms) }

// Coeff returns the coefficient of the given monomial.
func (p Poly) Coeff(m Monomial) int {
	return p.terms[m.key()].coeff
}

// Plus returns p + q ("+" records alternative use, as in union/projection).
func (p Poly) Plus(q Poly) Poly {
	out := Poly{terms: make(map[string]polyTerm, len(p.terms)+len(q.terms))}
	for k, t := range p.terms {
		out.terms[k] = t
	}
	for k, t := range q.terms {
		if ex, ok := out.terms[k]; ok {
			c := ex.coeff + t.coeff
			if c == 0 {
				delete(out.terms, k)
			} else {
				out.terms[k] = polyTerm{mono: ex.mono, coeff: c}
			}
		} else {
			out.terms[k] = t
		}
	}
	return out
}

// Times returns p·q ("·" records joint use, as in join). If idempotent is
// true, token multiplication within monomials is idempotent.
func (p Poly) Times(q Poly, idempotent bool) Poly {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	out := Poly{terms: make(map[string]polyTerm, len(p.terms)*len(q.terms))}
	for _, a := range p.terms {
		for _, b := range q.terms {
			m := a.mono.Times(b.mono, idempotent)
			k := m.key()
			if ex, ok := out.terms[k]; ok {
				out.terms[k] = polyTerm{mono: m, coeff: ex.coeff + a.coeff*b.coeff}
			} else {
				out.terms[k] = polyTerm{mono: m, coeff: a.coeff * b.coeff}
			}
		}
	}
	return out
}

// Equal reports structural equality of two polynomials.
func (p Poly) Equal(q Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		o, ok := q.terms[k]
		if !ok || o.coeff != t.coeff {
			return false
		}
	}
	return true
}

// Monomials returns the monomials of p in canonical (key) order.
func (p Poly) Monomials() []Monomial {
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Monomial, len(keys))
	for i, k := range keys {
		out[i] = p.terms[k].mono
	}
	return out
}

// String renders the polynomial in a canonical order.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		t := p.terms[k]
		if t.coeff == 1 {
			parts = append(parts, t.mono.String())
		} else {
			parts = append(parts, fmt.Sprintf("%d·%s", t.coeff, t.mono.String()))
		}
	}
	return strings.Join(parts, " + ")
}

// Valuation assigns tokens to {0_prov, 1_prov} for deletion propagation:
// tokens in the deleted set evaluate to 0, all others to 1.
type Valuation struct {
	deleted map[Token]bool
}

// NewValuation returns a valuation deleting exactly the given tokens.
func NewValuation(deleted ...Token) Valuation {
	v := Valuation{deleted: make(map[Token]bool, len(deleted))}
	for _, t := range deleted {
		v.deleted[t] = true
	}
	return v
}

// Deleted reports whether token t is zeroed out.
func (v Valuation) Deleted(t Token) bool { return v.deleted[t] }

// EvalMonomial returns the numeric value of the monomial under v: 0 if any
// token is deleted, otherwise 1.
func (v Valuation) EvalMonomial(m Monomial) int {
	for t := range m.factors {
		if v.deleted[t] {
			return 0
		}
	}
	return 1
}

// Eval returns the natural-number value of p under v (each surviving
// monomial contributes its coefficient).
func (v Valuation) Eval(p Poly) int {
	var s int
	for _, t := range p.terms {
		s += t.coeff * v.EvalMonomial(t.mono)
	}
	return s
}
