package prov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// numericGD runs plain full-batch GD on the (optionally reduced) training
// set — the ground truth the symbolic iteration must match under valuation.
func numericGD(x *mat.Dense, y []float64, eta, lambda float64, steps int, removed map[int]bool) []float64 {
	n, m := x.Dims()
	w := make([]float64, m)
	grad := make([]float64, m)
	for s := 0; s < steps; s++ {
		mat.ZeroVec(grad)
		for i := 0; i < n; i++ {
			if removed[i] {
				continue
			}
			xi := x.Row(i)
			r := mat.Dot(xi, w) - y[i]
			mat.Axpy(grad, r, xi)
		}
		// NOTE: the annotated rule keeps the denominator n (the provenance
		// expression's P(t) with every token at 1prov evaluates to n only
		// when nothing is removed; the symbolic Eval also keeps n, so the
		// numeric reference must too for exact agreement).
		decay := 1 - eta*lambda
		f := 2 * eta / float64(n)
		for j := range w {
			w[j] = decay*w[j] - f*grad[j]
		}
	}
	return w
}

func toyProblem(seed int64, n, m int) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, m)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64()
	}
	return x, y
}

func TestSymbolicIterationMatchesNumericNoDeletion(t *testing.T) {
	x, y := toyProblem(1, 4, 2)
	it, err := NewLinearIteration(x, y, 0.05, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	it.Run(6)
	got := it.Eval()
	want := numericGD(x, y, 0.05, 0.1, 6, nil)
	if mat.Distance(got, want) > 1e-10 {
		t.Fatalf("symbolic (all 1prov) %v vs numeric %v", got, want)
	}
}

func TestSymbolicIterationDeletionPropagation(t *testing.T) {
	// Zeroing-out token 2 must equal numeric GD that skips sample 2 in the
	// gradient (with the annotated rule's fixed denominator).
	x, y := toyProblem(2, 4, 2)
	it, err := NewLinearIteration(x, y, 0.05, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	it.Run(5)
	got := it.Eval(2)
	want := numericGD(x, y, 0.05, 0.1, 5, map[int]bool{2: true})
	if mat.Distance(got, want) > 1e-10 {
		t.Fatalf("deletion propagation: symbolic %v vs numeric %v", got, want)
	}
	// Deleting everything gives the zero vector (W0 = 0 and every data term
	// is annotated with some token).
	if mat.Norm2(it.Eval(0, 1, 2, 3)) != 0 {
		t.Fatal("deleting all tokens should zero the expression")
	}
}

func TestIdempotenceBoundsExpressionGrowth(t *testing.T) {
	// Theorem 2/3 phenomenon: without idempotent token multiplication the
	// number of distinct provenance monomials grows with t (pᵢᵗ terms keep
	// appearing); with idempotence it is bounded by the lattice of token
	// subsets actually reachable — constant after the first few steps.
	x, y := toyProblem(3, 3, 2)
	nonIdem, err := NewLinearIteration(x, y, 0.05, 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	idem, err := NewLinearIteration(x, y, 0.05, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	var nonIdemGrowth, idemSizes []int
	for s := 0; s < 5; s++ {
		nonIdem.Step()
		idem.Step()
		nonIdemGrowth = append(nonIdemGrowth, nonIdem.NumTerms())
		idemSizes = append(idemSizes, idem.NumTerms())
	}
	if nonIdemGrowth[4] <= nonIdemGrowth[1] {
		t.Fatalf("non-idempotent term count did not grow: %v", nonIdemGrowth)
	}
	if idemSizes[4] != idemSizes[3] {
		t.Fatalf("idempotent term count did not stabilize: %v", idemSizes)
	}
	if idemSizes[4] >= nonIdemGrowth[4] {
		t.Fatalf("idempotent expression (%d terms) should be smaller than non-idempotent (%d)",
			idemSizes[4], nonIdemGrowth[4])
	}
}

func TestSymbolicIterationValidation(t *testing.T) {
	x, _ := toyProblem(4, 3, 2)
	if _, err := NewLinearIteration(x, []float64{1}, 0.1, 0, true); err == nil {
		t.Fatal("expected label-length error")
	}
	if _, err := NewLinearIteration(x, []float64{1, 2, 3}, 0, 0, true); err == nil {
		t.Fatal("expected eta error")
	}
}

func TestSymbolicMatchesDifferentEta(t *testing.T) {
	x, y := toyProblem(5, 3, 3)
	for _, eta := range []float64{0.01, 0.1} {
		it, err := NewLinearIteration(x, y, eta, 0.05, true)
		if err != nil {
			t.Fatal(err)
		}
		it.Run(4)
		got := it.Eval(1)
		want := numericGD(x, y, eta, 0.05, 4, map[int]bool{1: true})
		if d := mat.Distance(got, want); d > 1e-10 {
			t.Fatalf("eta=%v: distance %v", eta, d)
		}
	}
}

func TestSymbolicConvergenceUnderIdempotence(t *testing.T) {
	// With idempotence and a convergent learning rate, successive evaluated
	// iterates approach a fixed point (Theorem 3's conclusion, observed).
	x, y := toyProblem(6, 4, 2)
	it, err := NewLinearIteration(x, y, 0.05, 0.2, true)
	if err != nil {
		t.Fatal(err)
	}
	var prev []float64
	var lastDelta float64 = math.Inf(1)
	for s := 0; s < 30; s++ {
		it.Step()
		cur := it.Eval(0)
		if prev != nil {
			delta := mat.Distance(cur, prev)
			if s > 20 && delta > lastDelta+1e-12 {
				t.Fatalf("iterates not contracting at step %d: %v -> %v", s, lastDelta, delta)
			}
			lastDelta = delta
		}
		prev = cur
	}
	if lastDelta > 1e-2 {
		t.Fatalf("final step delta %v too large", lastDelta)
	}
}
