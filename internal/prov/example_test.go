package prov_test

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/prov"
)

// The introduction's running example: w = p²q∗u + qr⁴∗v + ps∗z. Deleting the
// sample annotated r zeroes its monomial, leaving u + z.
func Example() {
	p, q, r, s := prov.Token(0), prov.Token(1), prov.Token(2), prov.Token(3)
	u := mat.NewDenseData(1, 2, []float64{1, 0})
	v := mat.NewDenseData(1, 2, []float64{0, 1})
	z := mat.NewDenseData(1, 2, []float64{2, 2})

	w := prov.Annotate(prov.PolyFromMonomial(prov.NewMonomial(p, p, q), 1), u, false)
	w = w.Plus(prov.Annotate(prov.PolyFromMonomial(prov.NewMonomial(q, r, r, r, r), 1), v, false))
	w = w.Plus(prov.Annotate(prov.PolyFromMonomial(prov.NewMonomial(p, s), 1), z, false))

	updated := w.Eval(prov.NewValuation(r))
	fmt.Println(updated.Row(0))
	// Output: [3 2]
}

// ExampleLinearIteration runs the provenance-annotated GD update rule
// symbolically and propagates a deletion by zeroing the sample's token.
func ExampleLinearIteration() {
	x := mat.NewDenseData(3, 1, []float64{1, 2, 3})
	y := []float64{2, 4, 7}
	it, err := prov.NewLinearIteration(x, y, 0.05, 0, true)
	if err != nil {
		panic(err)
	}
	it.Run(40)
	full := it.Eval()      // all tokens present
	without2 := it.Eval(2) // delete the third sample
	fmt.Printf("full: %.3f, without sample 2: %.3f\n", full[0], without2[0])
	// Output: full: 2.214, without sample 2: 1.999
}
