package prov

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func randPoly(rng *rand.Rand) Poly {
	p := Zero()
	nterms := rng.Intn(4)
	for i := 0; i < nterms; i++ {
		toks := make([]Token, rng.Intn(3))
		for j := range toks {
			toks[j] = Token(rng.Intn(5))
		}
		p = p.Plus(PolyFromMonomial(NewMonomial(toks...), 1+rng.Intn(3)))
	}
	return p
}

func TestMonomialBasics(t *testing.T) {
	m := NewMonomial(1, 1, 2)
	if m.Degree() != 3 {
		t.Fatalf("Degree = %d", m.Degree())
	}
	if m.Exponent(1) != 2 || m.Exponent(2) != 1 || m.Exponent(9) != 0 {
		t.Fatal("wrong exponents")
	}
	if got := m.String(); got != "p1^2·p2" {
		t.Fatalf("String = %q", got)
	}
	if One().String() != "1" {
		t.Fatal("One String wrong")
	}
}

func TestMonomialTimesIdempotent(t *testing.T) {
	m := NewMonomial(1).Times(NewMonomial(1), true)
	if m.Exponent(1) != 1 {
		t.Fatalf("idempotent p·p exponent = %d, want 1", m.Exponent(1))
	}
	m2 := NewMonomial(1).Times(NewMonomial(1), false)
	if m2.Exponent(1) != 2 {
		t.Fatalf("non-idempotent p·p exponent = %d, want 2", m2.Exponent(1))
	}
}

func TestPolyIdentities(t *testing.T) {
	p := randPoly(rand.New(rand.NewSource(1)))
	if !p.Plus(Zero()).Equal(p) {
		t.Fatal("p + 0 != p")
	}
	if !p.Times(OnePoly(), false).Equal(p) {
		t.Fatal("p · 1 != p")
	}
	if !p.Times(Zero(), false).IsZero() {
		t.Fatal("p · 0 != 0")
	}
	if !Zero().IsZero() || Zero().NumTerms() != 0 {
		t.Fatal("Zero not zero")
	}
	if !OnePoly().IsOne() {
		t.Fatal("OnePoly not one")
	}
	if OnePoly().Plus(OnePoly()).IsOne() {
		t.Fatal("1+1 should not be one")
	}
}

func TestPolySemiringLawsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, r := randPoly(rng), randPoly(rng), randPoly(rng)
		// + commutative, associative.
		if !p.Plus(q).Equal(q.Plus(p)) {
			return false
		}
		if !p.Plus(q).Plus(r).Equal(p.Plus(q.Plus(r))) {
			return false
		}
		// · commutative, associative (both idempotent and not).
		for _, idem := range []bool{false, true} {
			if !p.Times(q, idem).Equal(q.Times(p, idem)) {
				return false
			}
			if !p.Times(q, idem).Times(r, idem).Equal(p.Times(q.Times(r, idem), idem)) {
				return false
			}
			// Distributivity.
			if !p.Times(q.Plus(r), idem).Equal(p.Times(q, idem).Plus(p.Times(r, idem))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolyCoeffAndMonomials(t *testing.T) {
	p := TokenPoly(1).Plus(TokenPoly(1)).Plus(TokenPoly(2))
	if p.Coeff(NewMonomial(1)) != 2 {
		t.Fatalf("Coeff(p1) = %d", p.Coeff(NewMonomial(1)))
	}
	if p.Coeff(NewMonomial(2)) != 1 {
		t.Fatalf("Coeff(p2) = %d", p.Coeff(NewMonomial(2)))
	}
	if len(p.Monomials()) != 2 {
		t.Fatalf("Monomials = %v", p.Monomials())
	}
	if p.String() == "" || Zero().String() != "0" {
		t.Fatal("String rendering broken")
	}
}

func TestValuationPaperExample(t *testing.T) {
	// The intro's example: w = p²q∗u + qr⁴∗v + ps∗z; deleting r leaves u+z.
	p, q, r, s := Token(0), Token(1), Token(2), Token(3)
	u := mat.NewDenseData(1, 2, []float64{1, 0})
	v := mat.NewDenseData(1, 2, []float64{0, 1})
	z := mat.NewDenseData(1, 2, []float64{2, 2})

	w := Annotate(PolyFromMonomial(NewMonomial(p, p, q), 1), u, false)
	w = w.Plus(Annotate(PolyFromMonomial(NewMonomial(q, r, r, r, r), 1), v, false))
	w = w.Plus(Annotate(PolyFromMonomial(NewMonomial(p, s), 1), z, false))

	got := w.Eval(NewValuation(r))
	want := u.Plus(z)
	if !got.Equal(want, 0) {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
	// Deleting nothing returns u+v+z.
	all := w.Eval(NewValuation())
	if !all.Equal(u.Plus(v).Plus(z), 0) {
		t.Fatalf("Eval(no deletion) = %v", all)
	}
	// Deleting p kills u and z.
	onlyV := w.Eval(NewValuation(p))
	if !onlyV.Equal(v, 0) {
		t.Fatalf("Eval(delete p) = %v, want %v", onlyV, v)
	}
}

func TestValuationEvalPoly(t *testing.T) {
	v := NewValuation(2)
	p := TokenPoly(1).Plus(TokenPoly(2)).Plus(OnePoly())
	if got := v.Eval(p); got != 2 {
		t.Fatalf("Eval = %d, want 2", got)
	}
	if !v.Deleted(2) || v.Deleted(1) {
		t.Fatal("Deleted wrong")
	}
}

func TestAnnotatedMulLaw(t *testing.T) {
	// (p∗A)(q∗B) = (p·q)∗(AB)
	rng := rand.New(rand.NewSource(2))
	a := mat.NewDense(2, 3)
	b := mat.NewDense(3, 2)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	pa := Annotate(TokenPoly(1), a, false)
	qb := Annotate(TokenPoly(2), b, false)
	prod := pa.Mul(qb)
	if prod.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d", prod.NumTerms())
	}
	term := prod.Terms()[0]
	wantPoly := TokenPoly(1).Times(TokenPoly(2), false)
	if !term.Poly.Equal(wantPoly) {
		t.Fatalf("Poly = %v, want %v", term.Poly, wantPoly)
	}
	if !term.Matrix.Equal(a.Mul(b), 1e-12) {
		t.Fatal("Matrix != AB")
	}
}

func TestAnnotatedZeroOutKillsTerm(t *testing.T) {
	a := mat.NewDenseData(1, 1, []float64{5})
	am := Annotate(TokenPoly(7), a, false)
	if got := am.Eval(NewValuation(7)); got.At(0, 0) != 0 {
		t.Fatalf("Eval after zero-out = %v", got.At(0, 0))
	}
	if got := am.Eval(NewValuation()); got.At(0, 0) != 5 {
		t.Fatalf("Eval with 1_prov = %v", got.At(0, 0))
	}
}

func TestDecomposeRowsDeletionPropagation(t *testing.T) {
	// Sec 4.1: annotate rows of X; Σ p²ᵢ∗xᵢxᵢᵀ under a deletion valuation
	// equals the Gram matrix of the surviving rows.
	rng := rand.New(rand.NewSource(3))
	n, m := 5, 3
	x := mat.NewDense(n, m)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	ax := DecomposeRows(x, false)
	if ax.NumTerms() != n {
		t.Fatalf("NumTerms = %d, want %d", ax.NumTerms(), n)
	}
	// Reconstruct X with no deletions.
	if !ax.Eval(NewValuation()).Equal(x, 0) {
		t.Fatal("DecomposeRows does not reconstruct X")
	}
	// XᵀX via annotated algebra: (Σpᵢ∗Rᵢ)ᵀ(Σpⱼ∗Rⱼ) — build transpose terms.
	axt := NewAnnotatedMatrix(m, n, false)
	for _, term := range ax.Terms() {
		axt.addTerm(term.Poly, term.Matrix.T())
	}
	gram := axt.Mul(ax)
	// Delete rows 1 and 3.
	val := NewValuation(1, 3)
	got := gram.Eval(val)
	want := mat.NewDense(m, m)
	for i := 0; i < n; i++ {
		if val.Deleted(Token(i)) {
			continue
		}
		mat.AddOuter(want, x.Row(i), x.Row(i), 1)
	}
	if !got.Equal(want, 1e-10) {
		t.Fatalf("deletion propagation mismatch:\n got %v\nwant %v", got, want)
	}
	// Cross terms pᵢ·pⱼ (i≠j) must be absent in XᵀX since helper rows are
	// disjoint: every surviving monomial must be a single squared token.
	for _, term := range gram.Terms() {
		if term.Matrix.MaxAbs() < 1e-14 {
			continue // structurally zero cross term
		}
		for _, mono := range term.Poly.Monomials() {
			toks := mono.Tokens()
			if len(toks) != 1 || mono.Exponent(toks[0]) != 2 {
				t.Fatalf("unexpected non-diagonal monomial %v with nonzero matrix", mono)
			}
		}
	}
}

func TestAnnotatedPlusGroupsEqualPolys(t *testing.T) {
	a := mat.NewDenseData(1, 1, []float64{1})
	b := mat.NewDenseData(1, 1, []float64{2})
	s := Annotate(TokenPoly(1), a, false).Plus(Annotate(TokenPoly(1), b, false))
	if s.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d, want 1 (grouped)", s.NumTerms())
	}
	if got := s.Eval(NewValuation()); got.At(0, 0) != 3 {
		t.Fatalf("Eval = %v", got.At(0, 0))
	}
}

func TestScaleNumeric(t *testing.T) {
	a := mat.NewDenseData(1, 1, []float64{4})
	am := Annotate(TokenPoly(1), a, false).ScaleNumeric(0.5)
	if got := am.Eval(NewValuation()); got.At(0, 0) != 2 {
		t.Fatalf("ScaleNumeric Eval = %v", got.At(0, 0))
	}
}

func TestAnnotatedDimensionPanics(t *testing.T) {
	a := Annotate(TokenPoly(1), mat.NewDense(2, 2), false)
	b := Annotate(TokenPoly(2), mat.NewDense(3, 3), false)
	for _, fn := range []func(){
		func() { a.Plus(b) },
		func() { a.Mul(b) },
		func() { NewAnnotatedMatrix(0, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
