package prov

import (
	"fmt"

	"repro/internal/mat"
)

// This file implements the paper's Sec 4 iteration models symbolically: the
// provenance-annotated gradient-descent update rule for linear regression
// (Eq 7/8) executed directly in the algebra of annotated matrices. It is the
// reference ("executable semantics") implementation that the optimized
// numeric machinery in internal/core is tested against — and it makes the
// Theorem 2/3 phenomenon observable: without idempotent token multiplication
// the provenance expressions accumulate unboundedly many monomials (e.g.
// pᵗᵢ terms whose coefficients blow up with the binomial growth used in the
// Theorem 2 proof), while with idempotence the expression size stays bounded
// and the iteration converges.

// LinearIteration carries the provenance-annotated state W⁽ᵗ⁾ of Eq 7 for a
// (small) training set. It is exponential in the worst case and intended for
// reference/testing at toy sizes, not production updates.
type LinearIteration struct {
	x          *mat.Dense
	y          []float64
	eta        float64
	lambda     float64
	idempotent bool
	w          *AnnotatedMatrix // m×1 annotated parameter expression
	t          int
}

// NewLinearIteration builds the annotated full-batch GD iteration for the
// given training set (row i annotated with token i), starting from W⁽⁰⁾ = 0.
func NewLinearIteration(x *mat.Dense, y []float64, eta, lambda float64, idempotent bool) (*LinearIteration, error) {
	n, m := x.Dims()
	if len(y) != n {
		return nil, fmt.Errorf("prov: %d labels for %d rows", len(y), n)
	}
	if eta <= 0 {
		return nil, fmt.Errorf("prov: eta %v must be positive", eta)
	}
	_ = m
	return &LinearIteration{
		x: x, y: y, eta: eta, lambda: lambda, idempotent: idempotent,
		w: NewAnnotatedMatrix(x.Cols(), 1, idempotent),
	}, nil
}

// Step applies one provenance-annotated update (Eq 7 with B(t) = all samples,
// P(t) replaced by the integer n as in the incremental-update reading):
//
//	W⁽ᵗ⁺¹⁾ = (1−ηλ)(1∗I)·W⁽ᵗ⁾ − (2η/n)·Σᵢ p²ᵢ∗(xᵢxᵢᵀ)·W⁽ᵗ⁾ + (2η/n)·Σᵢ p²ᵢ∗(xᵢyᵢ)
func (it *LinearIteration) Step() {
	n, m := it.x.Dims()
	scale := 2 * it.eta / float64(n)
	// A = (1−ηλ)(1prov∗I) − scale·Σ p²ᵢ∗xᵢxᵢᵀ
	a := Annotate(OnePoly(), mat.Identity(m).Scale(1-it.eta*it.lambda), it.idempotent)
	for i := 0; i < n; i++ {
		xi := it.x.Row(i)
		outer := mat.NewDense(m, m)
		mat.AddOuter(outer, xi, xi, -scale)
		p2 := PolyFromMonomial(NewMonomial(Token(i)).Times(NewMonomial(Token(i)), it.idempotent), 1)
		a = a.Plus(Annotate(p2, outer, it.idempotent))
	}
	next := a.Mul(it.w)
	// b = scale·Σ p²ᵢ∗(xᵢ·yᵢ)
	for i := 0; i < n; i++ {
		xi := it.x.Row(i)
		col := mat.NewDense(m, 1)
		for j := 0; j < m; j++ {
			col.Set(j, 0, scale*xi[j]*it.y[i])
		}
		p2 := PolyFromMonomial(NewMonomial(Token(i)).Times(NewMonomial(Token(i)), it.idempotent), 1)
		next = next.Plus(Annotate(p2, col, it.idempotent))
	}
	it.w = next
	it.t++
}

// Run executes steps iterations.
func (it *LinearIteration) Run(steps int) {
	for s := 0; s < steps; s++ {
		it.Step()
	}
}

// Expression returns the current annotated parameter expression W⁽ᵗ⁾.
func (it *LinearIteration) Expression() *AnnotatedMatrix { return it.w }

// NumTerms returns the number of distinct provenance annotations in W⁽ᵗ⁾ —
// the quantity whose growth separates the idempotent and non-idempotent
// regimes (Theorems 2/3).
func (it *LinearIteration) NumTerms() int { return it.w.NumTerms() }

// Eval performs deletion propagation: removed tokens become 0_prov, the rest
// 1_prov, and the surviving numeric contributions are summed into the
// updated parameter vector w_U⁽ᵗ⁾.
func (it *LinearIteration) Eval(removed ...Token) []float64 {
	res := it.w.Eval(NewValuation(removed...))
	m := res.Rows()
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		out[j] = res.At(j, 0)
	}
	return out
}
