package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/closedform"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/influence"
	"repro/internal/interp"
	"repro/internal/metrics"
)

// Method names the update strategies compared in the experiments.
type Method string

// The methods of Sec 6.2.
const (
	MethodBaseL      Method = "BaseL"
	MethodPrIU       Method = "PrIU"
	MethodPrIUOpt    Method = "PrIU-opt"
	MethodINFL       Method = "INFL"
	MethodClosedForm Method = "Closed-form"
)

// Result is one timed update run.
type Result struct {
	Workload     string
	Method       Method
	DeletionRate float64
	Removed      int
	UpdateTime   time.Duration
	// Metric is validation MSE (linear) or validation accuracy
	// (classification) of the updated model.
	Metric float64
	// Comparison relates the updated model to the BaseL reference (zero
	// value for the BaseL rows themselves).
	Comparison metrics.Comparison
}

// Prepared holds a workload with its data generated, initial model trained
// and all offline provenance captured, ready for timed update runs.
type Prepared struct {
	W     Workload
	Dense *dataset.Dataset
	Valid *dataset.Dataset
	Sp    *dataset.SparseDataset
	Sched *gbm.Schedule
	Minit *gbm.Model

	LinProv   *core.LinearProvenance
	LinOpt    *core.LinearOpt
	View      *closedform.View
	LogProv   *core.LogisticProvenance
	LogOpt    *core.LogisticOpt
	MultProv  *core.MultinomialProvenance
	MultOpt   *core.MultinomialOpt
	SpProv    *core.SparseLogisticProvenance
	Infl      *influence.Cached
	lin       *interp.Linearizer
	captureDt time.Duration
}

// sharedLinearizer uses a 100k-cell grid (error bound ~4·10⁻⁷, well inside
// every tolerance used here) to keep workload preparation fast; the paper's
// 10⁶-cell default is exercised by interp's own tests.
var sharedLinearizer *interp.Linearizer

func getLinearizer() *interp.Linearizer {
	if sharedLinearizer == nil {
		l, err := interp.NewLinearizer(interp.F, interp.DefaultBound, 100_000)
		if err != nil {
			panic(err)
		}
		sharedLinearizer = l
	}
	return sharedLinearizer
}

// Prepare generates the data, trains the initial model and runs every
// offline capture the workload's methods need.
func Prepare(w Workload) (*Prepared, error) {
	start := time.Now()
	dense, sp, err := w.Generate()
	if err != nil {
		return nil, err
	}
	p := &Prepared{W: w, Sp: sp, lin: getLinearizer()}
	if dense != nil {
		train, valid, err := dense.Split(0.9, w.Seed+7)
		if err != nil {
			return nil, err
		}
		p.Dense, p.Valid = train, valid
	}
	n := w.N
	if p.Dense != nil {
		n = p.Dense.N()
	} else if sp != nil {
		n = sp.N()
	}
	cfg := w.Cfg
	if cfg.BatchSize > n {
		cfg.BatchSize = n
	}
	p.W.Cfg = cfg
	sched, err := gbm.NewSchedule(n, cfg)
	if err != nil {
		return nil, err
	}
	p.Sched = sched
	opts := core.Options{Mode: w.Mode, Epsilon: w.Epsilon}
	switch w.Kind {
	case KindLinear:
		lp, err := core.CaptureLinear(p.Dense, cfg, sched, opts)
		if err != nil {
			return nil, err
		}
		p.LinProv = lp
		p.Minit = lp.Model()
		lo, err := core.NewLinearOpt(p.Dense, cfg)
		if err != nil {
			return nil, err
		}
		p.LinOpt = lo
		view, err := closedform.NewView(p.Dense, cfg.Lambda)
		if err != nil {
			return nil, err
		}
		p.View = view
	case KindBinary:
		lp, err := core.CaptureLogistic(p.Dense, cfg, sched, p.lin, opts)
		if err != nil {
			return nil, err
		}
		p.LogProv = lp
		p.Minit = lp.Model()
		lo, err := core.CaptureLogisticOpt(p.Dense, cfg, sched, p.lin, opts)
		if err != nil {
			return nil, err
		}
		p.LogOpt = lo
	case KindMulti:
		mp, err := core.CaptureMultinomial(p.Dense, cfg, sched, opts)
		if err != nil {
			return nil, err
		}
		p.MultProv = mp
		p.Minit = mp.Model()
		mo, err := core.CaptureMultinomialOpt(p.Dense, cfg, sched, opts)
		if err != nil {
			return nil, err
		}
		p.MultOpt = mo
	case KindSparse:
		spr, err := core.CaptureLogisticSparse(p.Sp, cfg, sched, p.lin)
		if err != nil {
			return nil, err
		}
		p.SpProv = spr
		p.Minit = spr.Model()
	default:
		return nil, fmt.Errorf("bench: unknown kind %d", w.Kind)
	}
	if w.Kind != KindSparse {
		infl, err := influence.NewCached(p.Dense, p.Minit, cfg.Lambda)
		if err != nil {
			return nil, err
		}
		p.Infl = infl
	}
	p.captureDt = time.Since(start)
	return p, nil
}

// CaptureTime reports how long preparation (data + training + provenance
// capture) took — the offline cost excluded from reported update times.
func (p *Prepared) CaptureTime() time.Duration { return p.captureDt }

// N returns the training-set size.
func (p *Prepared) N() int {
	if p.Dense != nil {
		return p.Dense.N()
	}
	return p.Sp.N()
}

// PickRemoval deterministically selects ⌈rate·n⌉ samples (at least 1).
func (p *Prepared) PickRemoval(rate float64, seed int64) []int {
	n := p.N()
	k := int(rate * float64(n))
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// Methods returns the update strategies applicable to this workload, in
// presentation order.
func (p *Prepared) Methods() []Method {
	switch p.W.Kind {
	case KindLinear:
		return []Method{MethodBaseL, MethodPrIU, MethodPrIUOpt, MethodClosedForm, MethodINFL}
	case KindBinary:
		return []Method{MethodBaseL, MethodPrIU, MethodPrIUOpt, MethodINFL}
	case KindMulti:
		if p.Dense.M() >= 256 {
			// cifar10 regime: the paper runs only PrIU (no opt, no INFL) for
			// extremely large feature spaces.
			return []Method{MethodBaseL, MethodPrIU}
		}
		return []Method{MethodBaseL, MethodPrIU, MethodPrIUOpt, MethodINFL}
	case KindSparse:
		return []Method{MethodBaseL, MethodPrIU}
	}
	return nil
}

// RunUpdate executes one timed update with the given method and removal set.
func (p *Prepared) RunUpdate(m Method, removed []int) (*gbm.Model, time.Duration, error) {
	rm, err := gbm.RemovalSet(p.N(), removed)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	var model *gbm.Model
	switch {
	case m == MethodBaseL && p.W.Kind == KindLinear:
		model, err = gbm.TrainLinear(p.Dense, p.W.Cfg, p.Sched, rm)
	case m == MethodBaseL && p.W.Kind == KindBinary:
		model, err = gbm.TrainLogistic(p.Dense, p.W.Cfg, p.Sched, rm)
	case m == MethodBaseL && p.W.Kind == KindMulti:
		model, err = gbm.TrainMultinomial(p.Dense, p.W.Cfg, p.Sched, rm)
	case m == MethodBaseL && p.W.Kind == KindSparse:
		model, err = gbm.TrainLogisticSparse(p.Sp, p.W.Cfg, p.Sched, rm)
	case m == MethodPrIU && p.W.Kind == KindLinear:
		model, err = p.LinProv.Update(removed)
	case m == MethodPrIU && p.W.Kind == KindBinary:
		model, err = p.LogProv.Update(removed)
	case m == MethodPrIU && p.W.Kind == KindMulti:
		model, err = p.MultProv.Update(removed)
	case m == MethodPrIU && p.W.Kind == KindSparse:
		model, err = p.SpProv.Update(removed)
	case m == MethodPrIUOpt && p.W.Kind == KindLinear:
		model, err = p.LinOpt.Update(removed)
	case m == MethodPrIUOpt && p.W.Kind == KindBinary:
		model, err = p.LogOpt.Update(removed)
	case m == MethodPrIUOpt && p.W.Kind == KindMulti:
		model, err = p.MultOpt.Update(removed)
	case m == MethodClosedForm && p.W.Kind == KindLinear:
		model, err = p.View.Update(removed)
	case m == MethodINFL && p.W.Kind != KindSparse:
		model, err = p.Infl.Update(removed)
	default:
		return nil, 0, fmt.Errorf("bench: method %s not applicable to workload %s", m, p.W.ID)
	}
	dt := time.Since(start)
	if err != nil {
		return nil, 0, err
	}
	return model, dt, nil
}

// Evaluate computes the validation metric of a model for this workload.
func (p *Prepared) Evaluate(model *gbm.Model) (float64, error) {
	switch p.W.Kind {
	case KindLinear:
		return metrics.MSE(model, p.Valid)
	case KindBinary, KindMulti:
		return metrics.Accuracy(model, p.Valid)
	case KindSparse:
		return metrics.AccuracySparse(model, p.Sp)
	}
	return 0, fmt.Errorf("bench: unknown kind")
}

// Sweep runs every applicable method across the deletion-rate sweep,
// comparing each updated model against the BaseL reference.
func (p *Prepared) Sweep(rates []float64) ([]Result, error) {
	var out []Result
	for ri, rate := range rates {
		removed := p.PickRemoval(rate, p.W.Seed+int64(1000*ri))
		base, baseDt, err := p.RunUpdate(MethodBaseL, removed)
		if err != nil {
			return nil, err
		}
		baseMetric, err := p.Evaluate(base)
		if err != nil {
			return nil, err
		}
		out = append(out, Result{
			Workload: p.W.ID, Method: MethodBaseL, DeletionRate: rate,
			Removed: len(removed), UpdateTime: baseDt, Metric: baseMetric,
		})
		for _, m := range p.Methods() {
			if m == MethodBaseL {
				continue
			}
			model, dt, err := p.RunUpdate(m, removed)
			if err != nil {
				return nil, err
			}
			metric, err := p.Evaluate(model)
			if err != nil {
				return nil, err
			}
			cmp, err := metrics.Compare(model, base)
			if err != nil {
				return nil, err
			}
			out = append(out, Result{
				Workload: p.W.ID, Method: m, DeletionRate: rate,
				Removed: len(removed), UpdateTime: dt, Metric: metric, Comparison: cmp,
			})
		}
	}
	return out, nil
}

// FootprintBytes reports provenance-cache memory per method for Table 3.
// BaseL's figure is the training data plus the batch schedule (what plain
// retraining keeps resident).
func (p *Prepared) FootprintBytes(m Method) int64 {
	var dataBytes int64
	if p.Dense != nil {
		dataBytes = int64(p.Dense.N())*int64(p.Dense.M())*8 + int64(p.Dense.N())*8
	} else {
		dataBytes = p.Sp.X.FootprintBytes() + int64(p.Sp.N())*8
	}
	base := dataBytes + p.Sched.FootprintBytes()
	switch m {
	case MethodBaseL:
		return base
	case MethodPrIU:
		switch p.W.Kind {
		case KindLinear:
			return base + p.LinProv.FootprintBytes()
		case KindBinary:
			return base + p.LogProv.FootprintBytes()
		case KindMulti:
			return base + p.MultProv.FootprintBytes()
		case KindSparse:
			return base + p.SpProv.FootprintBytes()
		}
	case MethodPrIUOpt:
		switch p.W.Kind {
		case KindLinear:
			return base + p.LinOpt.FootprintBytes()
		case KindBinary:
			return base + p.LogOpt.FootprintBytes()
		case KindMulti:
			return base + p.MultOpt.FootprintBytes()
		}
	}
	return 0
}
