// Package mat implements the dense linear-algebra substrate used throughout
// the PrIU reproduction: matrices and vectors backed by flat float64 slices,
// BLAS-like products, and the decompositions (Cholesky, LU, QR, symmetric
// eigendecomposition, SVD) that PrIU, PrIU-opt and the baselines rely on.
//
// The paper's implementation runs on PyTorch/scipy; Go has no standard
// numerical library, so this package is the from-scratch substitute. Only
// operations the algorithms actually need are provided, and all of them are
// deterministic.
package mat

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero rows×cols matrix.
// It panics if either dimension is not positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the underlying row-major storage (aliased, not copied).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom overwrites m with the contents of src. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets all elements to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*m.rows+i] = v
		}
	}
	return t
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddScaled adds s*b to m in place and returns m. Dimensions must match.
// Large matrices are updated row-block-parallel.
func (m *Dense) AddScaled(b *Dense, s float64) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: AddScaled dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	par.For(len(m.data), parGrainMem(), func(lo, hi int) {
		dst, src := m.data[lo:hi], b.data[lo:hi]
		for i, v := range src {
			dst[i] += s * v
		}
	})
	return m
}

// Sub subtracts b from m in place and returns m.
func (m *Dense) Sub(b *Dense) *Dense { return m.AddScaled(b, -1) }

// Plus returns m + b as a new matrix.
func (m *Dense) Plus(b *Dense) *Dense { return m.Clone().AddScaled(b, 1) }

// Minus returns m - b as a new matrix.
func (m *Dense) Minus(b *Dense) *Dense { return m.Clone().AddScaled(b, -1) }

// Mul returns the matrix product m*b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	MulInto(out, m, b)
	return out
}

// MulInto computes dst = a*b. dst must not alias a or b. Rows of dst are
// independent, so large products are computed row-block-parallel; within a
// block the cache-blocked micro-kernel in gemm.go does the work. Results are
// bitwise-deterministic at any worker count.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic("mat: MulInto dimension mismatch")
	}
	par.For(a.rows, parGrain(2*a.cols*b.cols), func(lo, hi int) {
		gemmRows(dst, a, b, lo, hi)
	})
}

// MulVec returns m*x as a new vector of length m.rows.
func (m *Dense) MulVec(x []float64) []float64 {
	out := make([]float64, m.rows)
	m.MulVecInto(out, x)
	return out
}

// MulVecInto computes dst = m*x. dst must have length m.rows and must not
// alias x. Output rows are independent, so large matrices are processed
// row-block-parallel.
func (m *Dense) MulVecInto(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d -> %d", m.rows, m.cols, len(x), len(dst)))
	}
	par.For(m.rows, parGrain(m.cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := m.data[i*m.cols : (i+1)*m.cols]
			var s float64
			for j, v := range ri {
				s += v * x[j]
			}
			dst[i] = s
		}
	})
}

// MulVecT returns mᵀ*x as a new vector of length m.cols.
func (m *Dense) MulVecT(x []float64) []float64 {
	out := make([]float64, m.cols)
	m.MulVecTInto(out, x)
	return out
}

// MulVecTInto computes dst = mᵀ*x. dst must have length m.cols and must not
// alias x. Rows contribute to the whole output, so large matrices reduce
// per-chunk partial sums with par.MapReduceDet: chunk boundaries and merge
// order are fixed by the shape alone, keeping the result bitwise-deterministic
// at any worker count. The small-matrix path stays allocation-free and, being
// a single chunk, computes the identical fold.
func (m *Dense) MulVecTInto(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch %dx%d^T * %d -> %d", m.rows, m.cols, len(x), len(dst)))
	}
	grain := parGrain(m.cols)
	if m.rows <= grain {
		for j := range dst {
			dst[j] = 0
		}
		m.addScaledRowsT(dst, x, 0, m.rows)
		return
	}
	acc := par.MapReduceDet(m.rows, grain,
		func() []float64 { return make([]float64, m.cols) },
		func(acc []float64, lo, hi int) []float64 {
			m.addScaledRowsT(acc, x, lo, hi)
			return acc
		},
		func(a, b []float64) []float64 {
			for j, v := range b {
				a[j] += v
			}
			return a
		})
	copy(dst, acc)
}

// addScaledRowsT accumulates Σ_{i∈[lo,hi)} x[i]·row_i into dst.
func (m *Dense) addScaledRowsT(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			dst[j] += xi * v
		}
	}
}

// Gram returns mᵀ*m (the Gram matrix of the columns) as a new cols×cols
// matrix. It exploits symmetry.
func (m *Dense) Gram() *Dense {
	g := NewDense(m.cols, m.cols)
	m.GramInto(g)
	return g
}

// GramInto computes mᵀ*m into dst (dst is overwritten). Only the upper
// triangle is computed — via the 4×4 column-tile kernels in gemm.go — and then
// mirrored. Narrow matrices (cols ≤ gramTallMaxCols, the capture shape)
// parallelize over row chunks with a fixed-order partial-Gram merge
// (par.MapReduceDet); wide matrices parallelize over disjoint output tiles.
// Both regimes are selected by shape alone and are bitwise-deterministic at
// any worker count.
func (m *Dense) GramInto(dst *Dense) {
	if dst.rows != m.cols || dst.cols != m.cols {
		panic("mat: GramInto dimension mismatch")
	}
	if m.cols <= gramTallMaxCols {
		grain := parGrain(m.cols * m.cols)
		if m.rows <= grain {
			dst.Zero()
			gramChunkUpper(dst, m, 0, m.rows)
		} else {
			acc := par.MapReduceDet(m.rows, grain,
				func() *Dense { return NewDense(m.cols, m.cols) },
				func(acc *Dense, lo, hi int) *Dense {
					gramChunkUpper(acc, m, lo, hi)
					return acc
				},
				func(a, b *Dense) *Dense { return a.AddScaled(b, 1) })
			dst.CopyFrom(acc)
		}
		mirrorLower(dst)
		return
	}
	dst.Zero()
	tiles := upperTiles((m.cols + 3) / 4)
	rb := gramRowBlock(m.cols)
	for r0 := 0; r0 < m.rows; r0 += rb {
		r1 := r0 + rb
		if r1 > m.rows {
			r1 = m.rows
		}
		par.For(len(tiles), parGrain(32*(r1-r0)), func(lo, hi int) {
			for t := lo; t < hi; t++ {
				gramColTile(dst, m, int(tiles[t][0])*4, int(tiles[t][1])*4, r0, r1)
			}
		})
	}
	mirrorLower(dst)
}

// RowGram returns m*mᵀ (the Gram matrix of the rows) as a new rows×rows
// matrix.
func (m *Dense) RowGram() *Dense {
	g := NewDense(m.rows, m.rows)
	m.RowGramInto(g)
	return g
}

// RowGramInto computes m*mᵀ into dst (dst is overwritten). Each element is a
// dot product of two contiguous rows, so the kernel tiles the upper triangle
// of the output 4×4, folds over the columns in registers, and mirrors. Output
// tiles are disjoint, so the parallel loop is bitwise-deterministic at any
// worker count.
func (m *Dense) RowGramInto(dst *Dense) {
	if dst.rows != m.rows || dst.cols != m.rows {
		panic("mat: RowGramInto dimension mismatch")
	}
	dst.Zero()
	tiles := upperTiles((m.rows + 3) / 4)
	par.For(len(tiles), parGrain(32*m.cols), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			rowGramTile(dst, m, int(tiles[t][0])*4, int(tiles[t][1])*4)
		}
	})
	mirrorLower(dst)
}

// AddOuter accumulates s * x*yᵀ into dst. len(x) must equal dst.rows and
// len(y) must equal dst.cols.
func AddOuter(dst *Dense, x, y []float64, s float64) {
	if len(x) != dst.rows || len(y) != dst.cols {
		panic("mat: AddOuter dimension mismatch")
	}
	n := dst.cols
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		f := s * xv
		di := dst.data[i*n : (i+1)*n]
		for j, yv := range y {
			di[j] += f * yv
		}
	}
}

// Equal reports whether m and b have identical dimensions and all elements
// within tol of each other.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging; large matrices are summarized.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense{%dx%d, fro=%.4g}", m.rows, m.cols, m.FrobeniusNorm())
	}
	s := fmt.Sprintf("Dense{%dx%d:", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf(" %v", m.Row(i))
	}
	return s + "}"
}
