package mat

import (
	"fmt"
	"math"
)

// Vector helpers operate on []float64 directly so hot loops stay allocation
// free; they are the vector half of the substrate.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AxpyInto computes dst[i] = a*x[i] + y[i]. dst may alias x or y.
func AxpyInto(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// Axpy accumulates dst[i] += a*x[i].
func Axpy(dst []float64, a float64, x []float64) {
	if len(dst) != len(x) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// SubVec returns x - y as a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// ZeroVec sets every element of x to zero.
func ZeroVec(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Distance returns the Euclidean distance between x and y.
func Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Distance length mismatch")
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between x and y, or 0 if
// either vector is zero.
func CosineSimilarity(x, y []float64) float64 {
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}
