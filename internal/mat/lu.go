package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
// It provides general linear solves and inverses (used by PrIU-opt when the
// eigenvector basis must be inverted).
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factorizes the square matrix a with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: LU requires a square matrix")
	}
	n := a.rows
	lu := make([]float64, n*n)
	copy(lu, a.data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		mx := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu[i*n+k] / pivot
			lu[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= f * lu[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b and returns x.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("mat: LU.Solve length mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Inverse returns A⁻¹ as a new matrix.
func (f *LU) Inverse() *Dense {
	n := f.n
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// Det returns the determinant of A.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}
