package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L*Lᵀ. It backs the Hessian solves in the INFL baseline
// and the ridge solves in the closed-form baseline.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage for simplicity)
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: Cholesky requires a square matrix")
	}
	n := a.rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A*x = b and returns x. b is not modified.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic("mat: Cholesky.Solve length mismatch")
	}
	n := c.n
	x := CloneVec(b)
	// Forward solve L*y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= c.l[i*n+k] * x[k]
		}
		x[i] = s / c.l[i*n+i]
	}
	// Back solve Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * x[k]
		}
		x[i] = s / c.l[i*n+i]
	}
	return x
}

// SolveMatrix solves A*X = B column by column and returns X.
func (c *Cholesky) SolveMatrix(b *Dense) *Dense {
	if b.rows != c.n {
		panic("mat: Cholesky.SolveMatrix dimension mismatch")
	}
	out := NewDense(b.rows, b.cols)
	col := make([]float64, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		x := c.Solve(col)
		for i := 0; i < b.rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// LogDet returns the log-determinant of A.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}
