package mat

import "repro/internal/par"

// parGrainMem returns the chunk grain for memory-bound element loops
// (AddScaled and friends): at least the pool's calibrated streamed-element
// cutoff per chunk.
func parGrainMem() int { return par.GrainMem(1) }

// parGrain converts a per-item flop estimate into a chunk grain for par.For.
func parGrain(perItem int) int { return par.Grain(perItem) }
