package mat

import "repro/internal/par"

// parMinFlops aliases the pool's shared work cutoff; kernels in this package
// size chunks so each carries at least this much arithmetic.
const parMinFlops = par.MinWork

// parGrain converts a per-item flop estimate into a chunk grain for par.For.
func parGrain(perItem int) int { return par.Grain(perItem) }

// parActive reports whether a loop of n items with the given grain would
// actually be split by par.For — used by kernels that need a different
// (allocation-free) code path when running serially.
func parActive(n, grain int) bool {
	return par.Workers() > 1 && n > grain
}
