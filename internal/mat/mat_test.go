package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func randSym(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	s := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Set(i, j, (a.At(i, j)+a.At(j, i))/2)
		}
	}
	return s
}

func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n+2, n)
	g := a.Gram()
	for i := 0; i < n; i++ {
		g.Add(i, i, 0.5)
	}
	return g
}

func TestNewDensePanics(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{0, 3}, {3, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", tc.r, tc.c)
				}
			}()
			NewDense(tc.r, tc.c)
		}()
	}
}

func TestNewDenseDataLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMulMatchesManual(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.Mul(b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 5, 7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := NewDenseData(7, 1, CloneVec(x))
	want := a.Mul(xm)
	got := a.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 6, 4)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := a.MulVecT(x)
	want := a.T().MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		a := randDense(rng, rows, cols)
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 9, 5)
	got := a.Gram()
	want := a.T().Mul(a)
	if !got.Equal(want, 1e-10) {
		t.Fatalf("Gram != AᵀA")
	}
}

func TestGramSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 2+rng.Intn(6), 1+rng.Intn(6))
		g := a.Gram()
		r, c := g.Dims()
		if r != c {
			return false
		}
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOuter(t *testing.T) {
	dst := NewDense(2, 3)
	AddOuter(dst, []float64{1, 2}, []float64{3, 4, 5}, 2)
	want := NewDenseData(2, 3, []float64{6, 8, 10, 12, 16, 20})
	if !dst.Equal(want, 0) {
		t.Fatalf("AddOuter = %v, want %v", dst, want)
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{10, 20, 30, 40})
	c := a.Plus(b)
	if !c.Equal(NewDenseData(2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Fatal("Plus wrong")
	}
	d := c.Minus(b)
	if !d.Equal(a, 0) {
		t.Fatal("Minus wrong")
	}
	d.Scale(3)
	if !d.Equal(NewDenseData(2, 2, []float64{3, 6, 9, 12}), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a, b, c := randDense(rng, n, n), randDense(rng, n, n), randDense(rng, n, n)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		a := randSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("NewCholesky: %v", err)
		}
		got := ch.Solve(b)
		if Distance(got, want) > 1e-7*(1+Norm2(want)) {
			t.Fatalf("trial %d: Cholesky solve error %v", trial, Distance(got, want))
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSPD(rng, 5)
	x := randDense(rng, 5, 3)
	b := a.Mul(x)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := ch.SolveMatrix(b)
	if !got.Equal(x, 1e-7) {
		t.Fatal("SolveMatrix mismatch")
	}
}

func TestLUSolveAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randDense(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		lu, err := NewLU(a)
		if err != nil {
			t.Fatalf("NewLU: %v", err)
		}
		got := lu.Solve(b)
		if Distance(got, want) > 1e-6*(1+Norm2(want)) {
			t.Fatalf("trial %d: LU solve error %v", trial, Distance(got, want))
		}
		inv := lu.Inverse()
		if !a.Mul(inv).Equal(Identity(n), 1e-6) {
			t.Fatalf("trial %d: A*A⁻¹ != I", trial)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 1, 4, 2})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lu.Det()-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", lu.Det())
	}
}

func TestEigenSymReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(12)
		a := randSym(rng, n)
		eig, err := NewEigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		if !eig.Reconstruct().Equal(a, 1e-8) {
			t.Fatalf("trial %d: QΛQᵀ != A", trial)
		}
		// Q orthogonal.
		if !eig.Q.T().Mul(eig.Q).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: QᵀQ != I", trial)
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if eig.Values[i] > eig.Values[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, eig.Values)
			}
		}
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewDenseData(3, 3, []float64{5, 0, 0, 0, -2, 0, 0, 0, 3})
	eig, err := NewEigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i, v := range want {
		if math.Abs(eig.Values[i]-v) > 1e-12 {
			t.Fatalf("Values = %v, want %v", eig.Values, want)
		}
	}
}

func TestEigenUpdateValuesExactForCommutingPerturbation(t *testing.T) {
	// When delta shares the eigenbasis of A the incremental update is exact.
	rng := rand.New(rand.NewSource(8))
	n := 6
	a := randSPD(rng, n)
	eig, err := NewEigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// delta = Q * diag(d) * Qᵀ
	d := make([]float64, n)
	for i := range d {
		d[i] = 0.01 * rng.NormFloat64()
	}
	qd := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qd.Set(i, j, eig.Q.At(i, j)*d[j])
		}
	}
	delta := qd.Mul(eig.Q.T())
	got := eig.UpdateValues(delta)
	for i := range got {
		want := eig.Values[i] + d[i]
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("UpdateValues[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestEigenUpdateValuesLowRankMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 7
	a := randSPD(rng, n)
	eig, err := NewEigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	dx := randDense(rng, 3, n).Scale(0.1)
	delta := dx.Gram().Scale(-1)
	dense := eig.UpdateValues(delta)
	lowrank := eig.UpdateValuesLowRank(dx)
	for i := range dense {
		if math.Abs(dense[i]-lowrank[i]) > 1e-9 {
			t.Fatalf("low-rank update mismatch at %d: %v vs %v", i, lowrank[i], dense[i])
		}
	}
}

func TestSVDSymReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(10)
		a := randSym(rng, n)
		svd, err := NewSVDSym(a)
		if err != nil {
			t.Fatal(err)
		}
		if !svd.Reconstruct().Equal(a, 1e-8) {
			t.Fatalf("trial %d: USVᵀ != A", trial)
		}
		for i := 1; i < n; i++ {
			if svd.S[i] > svd.S[i-1]+1e-12 {
				t.Fatalf("trial %d: singular values not sorted: %v", trial, svd.S)
			}
		}
		for _, s := range svd.S {
			if s < 0 {
				t.Fatalf("negative singular value %v", s)
			}
		}
	}
}

func TestSVDTruncateCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Low-rank PSD matrix: rank 3 in dimension 8.
	base := randDense(rng, 3, 8)
	a := base.Gram()
	svd, err := NewSVDSym(a)
	if err != nil {
		t.Fatal(err)
	}
	r := svd.RankForCoverage(0.01)
	if r > 3 {
		t.Fatalf("RankForCoverage(0.01) = %d for rank-3 matrix", r)
	}
	tr, err := svd.Truncate(r)
	if err != nil {
		t.Fatal(err)
	}
	rec := tr.Reconstruct()
	relErr := rec.Minus(a).FrobeniusNorm() / a.FrobeniusNorm()
	if relErr > 1e-6 {
		t.Fatalf("rank-%d reconstruction rel error %v", r, relErr)
	}
}

func TestSVDFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randSym(rng, 6)
	svd, err := NewSVDSym(a)
	if err != nil {
		t.Fatal(err)
	}
	p, v := svd.Factors()
	if !p.Mul(v.T()).Equal(a, 1e-8) {
		t.Fatal("P*Vᵀ != A")
	}
}

func TestSVDTruncateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	svd, err := NewSVDSym(randSym(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svd.Truncate(0); err != ErrEmptyTruncation {
		t.Fatalf("Truncate(0) err = %v", err)
	}
	tr, err := svd.Truncate(99)
	if err != nil || len(tr.S) != 4 {
		t.Fatalf("Truncate(99) = %v, %v", tr, err)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if NormInf([]float64{1, -7, 3}) != 7 {
		t.Fatal("NormInf wrong")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	y := CloneVec(x)
	Axpy(y, 2, []float64{1, 1})
	if y[0] != 5 || y[1] != 6 {
		t.Fatalf("Axpy = %v", y)
	}
	AxpyInto(y, -1, x, x)
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("AxpyInto = %v", y)
	}
	if d := Distance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("Distance = %v", d)
	}
	if c := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-15 {
		t.Fatalf("CosineSimilarity = %v", c)
	}
	if c := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); math.Abs(c) > 1e-15 {
		t.Fatalf("orthogonal cosine = %v", c)
	}
	if c := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Fatalf("zero-vector cosine = %v", c)
	}
	s := SubVec([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Fatalf("SubVec = %v", s)
	}
	ScaleVec(s, 2)
	if s[0] != 6 || s[1] != 4 {
		t.Fatalf("ScaleVec = %v", s)
	}
	ZeroVec(s)
	if s[0] != 0 || s[1] != 0 {
		t.Fatalf("ZeroVec = %v", s)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusSubmultiplicativeProperty(t *testing.T) {
	// Cauchy-Schwarz for matrix norms (Lemma 6 of the appendix):
	// ‖AB‖_F ≤ ‖A‖_F·‖B‖_F.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b := randDense(rng, n, n), randDense(rng, n, n)
		return a.Mul(b).FrobeniusNorm() <= a.FrobeniusNorm()*b.FrobeniusNorm()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWeylInterlacingProperty(t *testing.T) {
	// Weyl's inequality (Lemma 7): eigenvalues of A+B are bounded by
	// eig_i(A) + eig_max(B) and eig_i(A) + eig_min(B).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a, b := randSym(rng, n), randSym(rng, n)
		ea, err := NewEigenSym(a)
		if err != nil {
			return false
		}
		eb, err := NewEigenSym(b)
		if err != nil {
			return false
		}
		es, err := NewEigenSym(a.Plus(b))
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			lo := ea.Values[i] + eb.Values[n-1] - 1e-8
			hi := ea.Values[i] + eb.Values[0] + 1e-8
			if es.Values[i] < lo || es.Values[i] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCopyFromAndZero(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2)
	b.CopyFrom(a)
	if !b.Equal(a, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Zero()
	if b.MaxAbs() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestStringForms(t *testing.T) {
	small := NewDenseData(1, 2, []float64{1, 2})
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	big := NewDense(20, 20)
	if big.String() == "" {
		t.Fatal("empty String for big matrix")
	}
}
