package mat

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization A = Q·R of an n×m matrix with
// n ≥ m. It backs the least-squares solves used when the ridge normal
// equations are too ill-conditioned for Cholesky (tiny λ with nearly
// collinear features) — a robustness path for the closed-form baseline and
// the diagnostics package.
type QR struct {
	n, m int
	// qr stores R in the upper triangle and the Householder vectors below.
	qr    []float64
	rdiag []float64
}

// NewQR factorizes a (which is not modified).
func NewQR(a *Dense) (*QR, error) {
	n, m := a.Dims()
	if n < m {
		return nil, errors.New("mat: QR requires rows >= cols")
	}
	qr := make([]float64, n*m)
	copy(qr, a.Data())
	rdiag := make([]float64, m)
	for k := 0; k < m; k++ {
		// Householder reflection for column k.
		var nrm float64
		for i := k; i < n; i++ {
			nrm = math.Hypot(nrm, qr[i*m+k])
		}
		if nrm == 0 {
			return nil, ErrSingular
		}
		if qr[k*m+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < n; i++ {
			qr[i*m+k] /= nrm
		}
		qr[k*m+k] += 1
		for j := k + 1; j < m; j++ {
			var s float64
			for i := k; i < n; i++ {
				s += qr[i*m+k] * qr[i*m+j]
			}
			s = -s / qr[k*m+k]
			for i := k; i < n; i++ {
				qr[i*m+j] += s * qr[i*m+k]
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{n: n, m: m, qr: qr, rdiag: rdiag}, nil
}

// SolveLeastSquares returns argmin_x ‖A·x − b‖₂ for len(b) == n.
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, errors.New("mat: QR solve length mismatch")
	}
	n, m := f.n, f.m
	y := CloneVec(b)
	// Apply Householder reflections: y ← Qᵀ·b.
	for k := 0; k < m; k++ {
		var s float64
		for i := k; i < n; i++ {
			s += f.qr[i*m+k] * y[i]
		}
		s = -s / f.qr[k*m+k]
		for i := k; i < n; i++ {
			y[i] += s * f.qr[i*m+k]
		}
	}
	// Back substitution R·x = y[:m].
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < m; j++ {
			s -= f.qr[i*m+j] * x[j]
		}
		if f.rdiag[i] == 0 {
			return nil, ErrSingular
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// R returns the m×m upper-triangular factor.
func (f *QR) R() *Dense {
	r := NewDense(f.m, f.m)
	for i := 0; i < f.m; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < f.m; j++ {
			r.Set(i, j, f.qr[i*f.m+j])
		}
	}
	return r
}
