package mat

// Cache-blocked dense kernels. The scalar triple loops these replace streamed
// the right-hand operand from memory once per output row; the kernels here
// block the hot loops so each cache line loaded feeds 4–16 multiply-adds.
// Inner loops are written as range loops over row slices, which Go compiles
// without bounds checks.
//
// Determinism contract: every kernel's per-element accumulation order is a
// function of the operand shapes and the fixed block constants alone — never
// of the worker count or of where par.For happens to split a row range. A row
// computed inside a 4-row group folds its reduction index in exactly the same
// order (k-pairs, then the odd tail) as the same row computed alone at a
// group tail, so the two are bitwise identical.

// gramRowBlockTarget sizes Gram row blocks so a block of input rows stays
// L2-resident while the column tiles fold over it repeatedly.
const gramRowBlockTarget = 1 << 15

// gramTallMaxCols selects GramInto's regime: at or below this column count
// the per-chunk partial-Gram accumulators are cheap (≤ 0.5 MB), so row-chunk
// parallelism with an ordered merge wins; above it the kernel parallelizes
// over disjoint output tiles within sequential row blocks. The rule depends
// only on the shape, so the same regime — and the same arithmetic — is chosen
// at any worker count.
const gramTallMaxCols = 256

// gramRowBlock returns the row-block height for a Gram over `cols` columns.
func gramRowBlock(cols int) int {
	rb := gramRowBlockTarget / cols
	if rb < 8 {
		rb = 8
	}
	return rb
}

// gemmRows computes dst[lo:hi] = a[lo:hi] * b, overwriting the dst rows.
// Rows are processed in groups of 4 sharing each streamed pair of b rows.
func gemmRows(dst, a, b *Dense, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		di := dst.data[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		gemmRow4(dst, a, b, i)
	}
	for ; i < hi; i++ {
		gemmRow1(dst, a, b, i)
	}
}

// gemmRow4 computes dst rows i..i+3: a rank-2 update per step streams two b
// rows across four L1-resident dst rows, an 8× reduction in b traffic over
// the scalar row-at-a-time loop.
func gemmRow4(dst, a, b *Dense, i int) {
	k, n := a.cols, b.cols
	a0 := a.data[i*k : (i+1)*k]
	a1 := a.data[(i+1)*k : (i+2)*k]
	a2 := a.data[(i+2)*k : (i+3)*k]
	a3 := a.data[(i+3)*k : (i+4)*k]
	d0 := dst.data[i*n : (i+1)*n]
	d1 := dst.data[(i+1)*n : (i+2)*n]
	d2 := dst.data[(i+2)*n : (i+3)*n]
	d3 := dst.data[(i+3)*n : (i+4)*n]
	p := 0
	for ; p+2 <= k; p += 2 {
		b0 := b.data[p*n : (p+1)*n]
		b1 := b.data[(p+1)*n : (p+2)*n]
		a00, a01 := a0[p], a0[p+1]
		a10, a11 := a1[p], a1[p+1]
		a20, a21 := a2[p], a2[p+1]
		a30, a31 := a3[p], a3[p+1]
		for j, bv0 := range b0 {
			bv1 := b1[j]
			d0[j] += a00*bv0 + a01*bv1
			d1[j] += a10*bv0 + a11*bv1
			d2[j] += a20*bv0 + a21*bv1
			d3[j] += a30*bv0 + a31*bv1
		}
	}
	if p < k {
		b0 := b.data[p*n : (p+1)*n]
		a00, a10, a20, a30 := a0[p], a1[p], a2[p], a3[p]
		for j, bv0 := range b0 {
			d0[j] += a00 * bv0
			d1[j] += a10 * bv0
			d2[j] += a20 * bv0
			d3[j] += a30 * bv0
		}
	}
}

// gemmRow1 is the single-row edge of gemmRow4 with the identical k-pair fold
// per element, so results do not depend on where a 4-row group boundary
// falls.
func gemmRow1(dst, a, b *Dense, i int) {
	k, n := a.cols, b.cols
	ai := a.data[i*k : (i+1)*k]
	di := dst.data[i*n : (i+1)*n]
	p := 0
	for ; p+2 <= k; p += 2 {
		b0 := b.data[p*n : (p+1)*n]
		b1 := b.data[(p+1)*n : (p+2)*n]
		a00, a01 := ai[p], ai[p+1]
		for j, bv0 := range b0 {
			di[j] += a00*bv0 + a01*b1[j]
		}
	}
	if p < k {
		b0 := b.data[p*n : (p+1)*n]
		a00 := ai[p]
		for j, bv0 := range b0 {
			di[j] += a00 * bv0
		}
	}
}

// upperTiles enumerates the 4×4 block coordinates of the upper triangle of an
// nb×nb block grid in row-major order.
func upperTiles(nb int) [][2]int32 {
	tiles := make([][2]int32, 0, nb*(nb+1)/2)
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			tiles = append(tiles, [2]int32{int32(bi), int32(bj)})
		}
	}
	return tiles
}

// gramColTile folds rows [r0,r1) of m into the upper-triangle output tile
// anchored at columns (i0, j0) of dst += mᵀm. Full 4×4 tiles use 16 register
// accumulators; clipped edge tiles fall back to one register per element with
// the identical ascending-row fold.
func gramColTile(dst, m *Dense, i0, j0, r0, r1 int) {
	n := m.cols
	i1, j1 := i0+4, j0+4
	if i1 > n {
		i1 = n
	}
	if j1 > n {
		j1 = n
	}
	if i1-i0 == 4 && j1-j0 == 4 {
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		for r := r0; r < r1; r++ {
			row := m.data[r*n : (r+1)*n]
			x := row[i0 : i0+4 : i0+4]
			y := row[j0 : j0+4 : j0+4]
			x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
			y0, y1, y2, y3 := y[0], y[1], y[2], y[3]
			c00 += x0 * y0
			c01 += x0 * y1
			c02 += x0 * y2
			c03 += x0 * y3
			c10 += x1 * y0
			c11 += x1 * y1
			c12 += x1 * y2
			c13 += x1 * y3
			c20 += x2 * y0
			c21 += x2 * y1
			c22 += x2 * y2
			c23 += x2 * y3
			c30 += x3 * y0
			c31 += x3 * y1
			c32 += x3 * y2
			c33 += x3 * y3
		}
		d := dst.data
		d[i0*n+j0] += c00
		d[i0*n+j0+1] += c01
		d[i0*n+j0+2] += c02
		d[i0*n+j0+3] += c03
		d[(i0+1)*n+j0] += c10
		d[(i0+1)*n+j0+1] += c11
		d[(i0+1)*n+j0+2] += c12
		d[(i0+1)*n+j0+3] += c13
		d[(i0+2)*n+j0] += c20
		d[(i0+2)*n+j0+1] += c21
		d[(i0+2)*n+j0+2] += c22
		d[(i0+2)*n+j0+3] += c23
		d[(i0+3)*n+j0] += c30
		d[(i0+3)*n+j0+1] += c31
		d[(i0+3)*n+j0+2] += c32
		d[(i0+3)*n+j0+3] += c33
		return
	}
	for i := i0; i < i1; i++ {
		js := j0
		if js < i {
			js = i
		}
		for j := js; j < j1; j++ {
			var c float64
			for r := r0; r < r1; r++ {
				c += m.data[r*n+i] * m.data[r*n+j]
			}
			dst.data[i*n+j] += c
		}
	}
}

// gramChunkUpper folds rows [lo,hi) of m into the upper triangle of dst,
// walking L2-sized row blocks and, inside each block, all upper tiles over
// the cache-resident rows.
func gramChunkUpper(dst, m *Dense, lo, hi int) {
	nb := (m.cols + 3) / 4
	rb := gramRowBlock(m.cols)
	for r0 := lo; r0 < hi; r0 += rb {
		r1 := r0 + rb
		if r1 > hi {
			r1 = hi
		}
		for bi := 0; bi < nb; bi++ {
			for bj := bi; bj < nb; bj++ {
				gramColTile(dst, m, bi*4, bj*4, r0, r1)
			}
		}
	}
}

// mirrorLower copies the upper triangle of the symmetric matrix dst onto the
// lower triangle.
func mirrorLower(dst *Dense) {
	n := dst.cols
	for i := 1; i < n; i++ {
		di := dst.data[i*n : i*n+i]
		for j := range di {
			di[j] = dst.data[j*n+i]
		}
	}
}

// rowGramTile folds columns of m into the upper-triangle output tile anchored
// at (i0, j0) of dst += m·mᵀ: each element is the dot product of two
// (contiguous) rows of m, folded left to right.
func rowGramTile(dst, m *Dense, i0, j0 int) {
	rows, n := m.rows, m.cols
	i1, j1 := i0+4, j0+4
	if i1 > rows {
		i1 = rows
	}
	if j1 > rows {
		j1 = rows
	}
	if i1-i0 == 4 && j1-j0 == 4 {
		x0 := m.data[i0*n : (i0+1)*n]
		x1 := m.data[(i0+1)*n : (i0+2)*n]
		x2 := m.data[(i0+2)*n : (i0+3)*n]
		x3 := m.data[(i0+3)*n : (i0+4)*n]
		y0 := m.data[j0*n : (j0+1)*n]
		y1 := m.data[(j0+1)*n : (j0+2)*n]
		y2 := m.data[(j0+2)*n : (j0+3)*n]
		y3 := m.data[(j0+3)*n : (j0+4)*n]
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		for p, av := range x0 {
			b0, b1, b2, b3 := y0[p], y1[p], y2[p], y3[p]
			c00 += av * b0
			c01 += av * b1
			c02 += av * b2
			c03 += av * b3
			av = x1[p]
			c10 += av * b0
			c11 += av * b1
			c12 += av * b2
			c13 += av * b3
			av = x2[p]
			c20 += av * b0
			c21 += av * b1
			c22 += av * b2
			c23 += av * b3
			av = x3[p]
			c30 += av * b0
			c31 += av * b1
			c32 += av * b2
			c33 += av * b3
		}
		dr := dst.cols
		d := dst.data
		d[i0*dr+j0] += c00
		d[i0*dr+j0+1] += c01
		d[i0*dr+j0+2] += c02
		d[i0*dr+j0+3] += c03
		d[(i0+1)*dr+j0] += c10
		d[(i0+1)*dr+j0+1] += c11
		d[(i0+1)*dr+j0+2] += c12
		d[(i0+1)*dr+j0+3] += c13
		d[(i0+2)*dr+j0] += c20
		d[(i0+2)*dr+j0+1] += c21
		d[(i0+2)*dr+j0+2] += c22
		d[(i0+2)*dr+j0+3] += c23
		d[(i0+3)*dr+j0] += c30
		d[(i0+3)*dr+j0+1] += c31
		d[(i0+3)*dr+j0+2] += c32
		d[(i0+3)*dr+j0+3] += c33
		return
	}
	dr := dst.cols
	for i := i0; i < i1; i++ {
		ri := m.data[i*n : (i+1)*n]
		js := j0
		if js < i {
			js = i
		}
		for j := js; j < j1; j++ {
			rj := m.data[j*n : (j+1)*n]
			var c float64
			for p, v := range ri {
				c += v * rj[p]
			}
			dst.data[i*dr+j] += c
		}
	}
}
