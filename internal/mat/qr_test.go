package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestQRLeastSquaresExactSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(8)
		m := 2 + rng.Intn(4)
		a := randDense(rng, n, m)
		want := make([]float64, m)
		for j := range want {
			want[j] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		qr, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := qr.SolveLeastSquares(b)
		if err != nil {
			t.Fatal(err)
		}
		if Distance(got, want) > 1e-8*(1+Norm2(want)) {
			t.Fatalf("trial %d: QR solve error %v", trial, Distance(got, want))
		}
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(22))
	a := randDense(rng, 12, 4)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.SolveLeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	res := SubVec(b, a.MulVec(x))
	proj := a.MulVecT(res)
	if NormInf(proj) > 1e-9 {
		t.Fatalf("residual not orthogonal: Aᵀr = %v", proj)
	}
}

func TestQRMatchesNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randDense(rng, 20, 5)
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := qr.SolveLeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	g := a.Gram()
	ch, err := NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	x2 := ch.Solve(a.MulVecT(b))
	if Distance(x1, x2) > 1e-8*(1+Norm2(x2)) {
		t.Fatalf("QR and normal equations differ by %v", Distance(x1, x2))
	}
}

func TestQRRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randDense(rng, 9, 4)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	r := qr.R()
	for i := 1; i < 4; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R[%d][%d] = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
	// |det R| = Π|rdiag| must equal sqrt(det AᵀA).
	detR := 1.0
	for i := 0; i < 4; i++ {
		detR *= r.At(i, i)
	}
	lu, err := NewLU(a.Gram())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(detR)-math.Sqrt(lu.Det())) > 1e-8*(1+math.Abs(detR)) {
		t.Fatalf("|det R| = %v, sqrt(det AᵀA) = %v", math.Abs(detR), math.Sqrt(lu.Det()))
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err == nil {
		t.Fatal("expected rows>=cols error")
	}
	// Rank-deficient: an all-zero column has Householder norm exactly 0.
	a := NewDenseData(3, 2, []float64{1, 0, 2, 0, 3, 0})
	if _, err := NewQR(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	good := NewDenseData(3, 2, []float64{1, 0, 0, 1, 0, 0})
	qr, err := NewQR(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.SolveLeastSquares([]float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
}
