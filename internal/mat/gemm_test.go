package mat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
)

// mulRef is the scalar reference product used to validate the blocked kernel.
func mulRef(a, b *Dense) *Dense {
	ar, ak := a.Dims()
	_, bc := b.Dims()
	out := NewDense(ar, bc)
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var s float64
			for k := 0; k < ak; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func gramRef(m *Dense) *Dense {
	rows, cols := m.Dims()
	out := NewDense(cols, cols)
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for r := 0; r < rows; r++ {
				s += m.At(r, i) * m.At(r, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func rowGramRef(m *Dense) *Dense {
	rows, cols := m.Dims()
	out := NewDense(rows, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < rows; j++ {
			var s float64
			for c := 0; c < cols; c++ {
				s += m.At(i, c) * m.At(j, c)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func maxAbsDiff(a, b *Dense) float64 {
	var mx float64
	for i, v := range a.data {
		if d := math.Abs(v - b.data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestMulIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Shapes chosen to hit every micro-kernel edge: tiny, non-multiples of 4
	// in every dimension, and k > gemmKC for the multi-panel path.
	for _, s := range [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 6},
		{17, 33, 29}, {64, 40, 50}, {23, 300, 31},
	} {
		a := randDense(rng, s[0], s[1])
		b := randDense(rng, s[1], s[2])
		got := a.Mul(b)
		want := mulRef(a, b)
		if d := maxAbsDiff(got, want); d > 1e-11 {
			t.Errorf("MulInto %v: max diff %g vs reference", s, d)
		}
	}
}

func TestGramIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Shapes covering both regimes: narrow (row-chunk MapReduceDet, the
	// capture shape) and wide (output-tile parallelism), plus edge tiles.
	for _, s := range [][2]int{
		{5, 4}, {50, 7}, {500, 37}, {64, 300}, {3, 261},
	} {
		m := randDense(rng, s[0], s[1])
		got := m.Gram()
		want := gramRef(m)
		if d := maxAbsDiff(got, want); d > 1e-10 {
			t.Errorf("GramInto %v: max diff %g vs reference", s, d)
		}
		// Symmetry must be exact (mirrored, not recomputed).
		for i := 0; i < s[1]; i++ {
			for j := 0; j < i; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("GramInto %v: asymmetric at (%d,%d)", s, i, j)
				}
			}
		}
	}
}

func TestRowGramMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range [][2]int{
		{4, 4}, {7, 50}, {37, 300}, {261, 3},
	} {
		m := randDense(rng, s[0], s[1])
		got := m.RowGram()
		want := rowGramRef(m)
		if d := maxAbsDiff(got, want); d > 1e-10 {
			t.Errorf("RowGramInto %v: max diff %g vs reference", s, d)
		}
	}
}

// TestKernelsBitwiseDeterministicAcrossWorkers locks in the contract the
// persist layer relies on: with cutoffs pinned, every kernel produces
// identical bits at any worker count. Tiny cutoffs force the parallel paths
// to engage even at test sizes.
func TestKernelsBitwiseDeterministicAcrossWorkers(t *testing.T) {
	pc, pm := par.Cutoffs()
	par.SetCutoffs(64, 64)
	defer par.SetCutoffs(pc, pm)

	rng := rand.New(rand.NewSource(14))
	a := randDense(rng, 33, 47)
	b := randDense(rng, 47, 29)
	tall := randDense(rng, 200, 37)
	wide := randDense(rng, 48, 300)
	x := randVecTest(rng, 200)

	sym := randSym(rng, 41)

	type result struct {
		mul, gramTall, gramWide, rowGram *Dense
		mulVecT                          []float64
		eig                              *Eigen
	}
	run := func() result {
		r := result{
			mul:      NewDense(33, 29),
			gramTall: NewDense(37, 37),
			gramWide: NewDense(300, 300),
			rowGram:  NewDense(48, 48),
			mulVecT:  make([]float64, 37),
		}
		MulInto(r.mul, a, b)
		tall.GramInto(r.gramTall)
		wide.GramInto(r.gramWide)
		wide.RowGramInto(r.rowGram)
		tall.MulVecTInto(r.mulVecT, x)
		eig, err := NewEigenSym(sym)
		if err != nil {
			t.Fatal(err)
		}
		r.eig = eig
		return r
	}

	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base := run()
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		got := run()
		for name, pair := range map[string][2]*Dense{
			"MulInto":      {base.mul, got.mul},
			"GramInto/37":  {base.gramTall, got.gramTall},
			"GramInto/300": {base.gramWide, got.gramWide},
			"RowGramInto":  {base.rowGram, got.rowGram},
		} {
			for i, v := range pair[0].data {
				if v != pair[1].data[i] {
					t.Fatalf("%s: workers=%d differs from workers=1 at flat index %d", name, w, i)
				}
			}
		}
		for i, v := range base.mulVecT {
			if v != got.mulVecT[i] {
				t.Fatalf("MulVecTInto: workers=%d differs from workers=1 at %d", w, i)
			}
		}
		for i, v := range base.eig.Values {
			if v != got.eig.Values[i] {
				t.Fatalf("NewEigenSym values: workers=%d differs from workers=1 at %d", w, i)
			}
		}
		for i, v := range base.eig.Q.data {
			if v != got.eig.Q.data[i] {
				t.Fatalf("NewEigenSym Q: workers=%d differs from workers=1 at flat %d", w, i)
			}
		}
	}
}

func randVecTest(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
