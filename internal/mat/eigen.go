package mat

import (
	"errors"
	"math"
	"sort"

	"repro/internal/par"
)

// Eigen holds the eigendecomposition of a real symmetric matrix
// A = Q * diag(Values) * Qᵀ with Q orthogonal and eigenvalues sorted in
// descending order. PrIU-opt (Sec 5.2/5.4 of the paper) relies on this
// decomposition of M = XᵀX (linear regression) and of the stabilized
// provenance matrix C (logistic regression).
type Eigen struct {
	// Values are the eigenvalues in descending order.
	Values []float64
	// Q has the corresponding eigenvectors as columns.
	Q *Dense
}

// jacobiMaxSweeps bounds the cyclic-Jacobi iteration; symmetric matrices of
// the sizes used here (feature-space dimension) converge in well under this
// many sweeps.
const jacobiMaxSweeps = 64

// NewEigenSym computes the eigendecomposition of the symmetric matrix a using
// a tournament-ordered parallel cyclic Jacobi method. Only symmetry to within
// round-off is assumed.
//
// Each sweep is organized as the N−1 rounds of a round-robin tournament:
// within a round every index appears in exactly one rotation pair, so the
// pairs' rotations act on disjoint coordinates and commute. All rotation
// angles for a round are computed from the round-start matrix (a rotation's
// defining entries (p,p), (p,q), (q,q) are untouched by the other pairs of
// the round, so the annihilation stays exact), then applied in two batched
// phases — column rotations, then row rotations plus Q-column rotations —
// each phase writing pair-disjoint columns or rows. Phases parallelize over
// pairs on the par pool; since every matrix element is written by exactly one
// pair per phase and the schedule is fixed, the result is bitwise identical
// at any worker count. The same tournament schedule runs serially on a single
// worker, so there is no separate serial algorithm to diverge from.
//
// The off-diagonal norm that drives convergence is maintained incrementally:
// annihilating (p,q) reduces the upper-triangle sum of squares by exactly
// apq² in exact arithmetic, so each round subtracts Σ apq² instead of
// rescanning O(n²) entries. Because the running value accumulates round-off,
// a full rescan confirms convergence before the loop exits.
func NewEigenSym(a *Dense) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: NewEigenSym requires a square matrix")
	}
	n := a.rows
	w := a.Clone()
	q := Identity(n)
	if n == 1 {
		return &Eigen{Values: []float64{w.At(0, 0)}, Q: q}, nil
	}
	// Scale-aware stopping threshold.
	var fro float64
	for _, v := range w.data {
		fro += v * v
	}
	tol := 1e-28 * (fro + 1)
	off := offUpper(w)

	// Round-robin tournament state: player 0 stays fixed, the rest rotate one
	// slot per round; odd n adds a bye slot.
	nPlayers := n
	if nPlayers%2 == 1 {
		nPlayers++
	}
	half := nPlayers / 2
	rounds := nPlayers - 1
	perm := make([]int, nPlayers)
	for i := range perm {
		perm[i] = i
	}
	pp := make([]int, half)
	pq := make([]int, half)
	cs := make([]float64, half)
	sn := make([]float64, half)
	grain := parGrain(12 * n)

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if off <= tol {
			// The running value carries round-off; rescan before trusting it.
			off = offUpper(w)
			if off <= tol {
				break
			}
		}
		for r := 0; r < rounds; r++ {
			np := 0
			for i := 0; i < half; i++ {
				p, qi := perm[i], perm[nPlayers-1-i]
				if p >= n || qi >= n {
					continue // bye slot on odd n
				}
				if p > qi {
					p, qi = qi, p
				}
				apq := w.At(p, qi)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(qi, qi)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e100 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				pp[np], pq[np], cs[np], sn[np] = p, qi, c, s
				off -= apq * apq
				np++
			}
			if off < 0 {
				off = 0
			}
			if np > 0 {
				// Phase 1: W ← W·G, pair-disjoint column pairs.
				par.For(np, grain, func(lo, hi int) {
					for t := lo; t < hi; t++ {
						rotateColumns(w, pp[t], pq[t], cs[t], sn[t])
					}
				})
				// Phase 2: W ← Gᵀ·W (pair-disjoint row pairs) and Q ← Q·G
				// (pair-disjoint column pairs of the separate matrix Q).
				par.For(np, grain, func(lo, hi int) {
					for t := lo; t < hi; t++ {
						rotateRows(w, pp[t], pq[t], cs[t], sn[t])
						rotateColumns(q, pp[t], pq[t], cs[t], sn[t])
					}
				})
			}
			rotateSchedule(perm)
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedQ := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedQ.Set(r, newCol, q.At(r, oldCol))
		}
	}
	return &Eigen{Values: sortedVals, Q: sortedQ}, nil
}

// offUpper returns the sum of squares of the strictly upper triangle.
func offUpper(w *Dense) float64 {
	n := w.cols
	var s float64
	for i := 0; i < n-1; i++ {
		ri := w.data[i*n+i+1 : (i+1)*n]
		for _, v := range ri {
			s += v * v
		}
	}
	return s
}

// rotateColumns applies the plane rotation G(p,r,θ) on the right: columns p
// and r of m are mixed, all other elements untouched.
func rotateColumns(m *Dense, p, r int, c, s float64) {
	stride := m.cols
	for k := 0; k < m.rows; k++ {
		kp := k * stride
		akp, akr := m.data[kp+p], m.data[kp+r]
		m.data[kp+p] = c*akp - s*akr
		m.data[kp+r] = s*akp + c*akr
	}
}

// rotateRows applies the plane rotation on the left: rows p and r of m are
// mixed, all other elements untouched.
func rotateRows(m *Dense, p, r int, c, s float64) {
	rp := m.data[p*m.cols : (p+1)*m.cols]
	rr := m.data[r*m.cols : (r+1)*m.cols]
	for k, apk := range rp {
		ark := rr[k]
		rp[k] = c*apk - s*ark
		rr[k] = s*apk + c*ark
	}
}

// rotateSchedule advances the round-robin tournament one round: slot 0 is
// fixed, slots 1..N−1 rotate by one.
func rotateSchedule(perm []int) {
	last := perm[len(perm)-1]
	copy(perm[2:], perm[1:len(perm)-1])
	perm[1] = last
}

// Reconstruct returns Q*diag(Values)*Qᵀ, primarily for testing.
func (e *Eigen) Reconstruct() *Dense {
	n := len(e.Values)
	qd := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qd.Set(i, j, e.Q.At(i, j)*e.Values[j])
		}
	}
	return qd.Mul(e.Q.T())
}

// UpdateValues implements the incremental eigenvalue update of Ning et al.
// used by PrIU-opt (Eq 18): when M' = M + delta is a small perturbation and
// the eigenvectors of M' are approximated by those of M, the updated
// eigenvalues are the diagonal of Qᵀ*M'*Q, i.e. Values[i] + (Qᵀ*delta*Q)[i][i].
// delta must be n×n. The receiver is not modified; updated values are
// returned in the eigenbasis order of e.
func (e *Eigen) UpdateValues(delta *Dense) []float64 {
	n := len(e.Values)
	if delta.rows != n || delta.cols != n {
		panic("mat: UpdateValues dimension mismatch")
	}
	out := make([]float64, n)
	// Each eigenvalue update is independent; chunks carry their own scratch.
	par.For(n, parGrain(2*n*n), func(lo, hi int) {
		tmp := make([]float64, n)
		col := make([]float64, n)
		for i := lo; i < hi; i++ {
			// col = i-th eigenvector.
			for r := 0; r < n; r++ {
				col[r] = e.Q.At(r, i)
			}
			delta.MulVecInto(tmp, col)
			out[i] = e.Values[i] + Dot(col, tmp)
		}
	})
	return out
}

// UpdateValuesGram returns the incremental eigenvalue update for a signed
// Gram perturbation delta = sign·ΔZᵀΔZ: Values[i] + sign·‖ΔZ·qᵢ‖². It costs
// O(k·n²) for a k×n ΔZ instead of forming the n×n delta.
func (e *Eigen) UpdateValuesGram(dz *Dense, sign float64) []float64 {
	n := len(e.Values)
	if dz.cols != n {
		panic("mat: UpdateValuesGram dimension mismatch")
	}
	out := make([]float64, n)
	par.For(n, parGrain(dz.rows*n), func(lo, hi int) {
		col := make([]float64, n)
		prod := make([]float64, dz.rows)
		for i := lo; i < hi; i++ {
			for r := 0; r < n; r++ {
				col[r] = e.Q.At(r, i)
			}
			dz.MulVecInto(prod, col)
			var s float64
			for _, v := range prod {
				s += v * v
			}
			out[i] = e.Values[i] + sign*s
		}
	})
	return out
}

// UpdateValuesLowRank is UpdateValues specialized to delta = -ΔXᵀΔX given the
// removed-row matrix ΔX (k×n). It costs O(k·n²) instead of forming the n×n
// delta: (Qᵀ(−ΔXᵀΔX)Q)[i][i] = −‖ΔX·qᵢ‖².
func (e *Eigen) UpdateValuesLowRank(dx *Dense) []float64 {
	return e.UpdateValuesGram(dx, -1)
}
