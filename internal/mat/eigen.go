package mat

import (
	"errors"
	"math"
	"sort"

	"repro/internal/par"
)

// Eigen holds the eigendecomposition of a real symmetric matrix
// A = Q * diag(Values) * Qᵀ with Q orthogonal and eigenvalues sorted in
// descending order. PrIU-opt (Sec 5.2/5.4 of the paper) relies on this
// decomposition of M = XᵀX (linear regression) and of the stabilized
// provenance matrix C (logistic regression).
type Eigen struct {
	// Values are the eigenvalues in descending order.
	Values []float64
	// Q has the corresponding eigenvectors as columns.
	Q *Dense
}

// jacobiMaxSweeps bounds the cyclic-Jacobi iteration; symmetric matrices of
// the sizes used here (feature-space dimension) converge in well under this
// many sweeps.
const jacobiMaxSweeps = 64

// NewEigenSym computes the eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. Only symmetry to within round-off is
// assumed; the strictly upper triangle is read.
func NewEigenSym(a *Dense) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: NewEigenSym requires a square matrix")
	}
	n := a.rows
	w := a.Clone()
	q := Identity(n)
	if n == 1 {
		return &Eigen{Values: []float64{w.At(0, 0)}, Q: q}, nil
	}
	// Scale-aware stopping threshold.
	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := w.At(i, j)
				s += v * v
			}
		}
		return s
	}
	var fro float64
	for _, v := range w.data {
		fro += v * v
	}
	tol := 1e-28 * (fro + 1)
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if off() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for qi := p + 1; qi < n; qi++ {
				apq := w.At(p, qi)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(qi, qi)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e100 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				applyJacobiRotation(w, q, p, qi, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedQ := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedQ.Set(r, newCol, q.At(r, oldCol))
		}
	}
	return &Eigen{Values: sortedVals, Q: sortedQ}, nil
}

// applyJacobiRotation applies the rotation G(p,q,θ) from both sides of w and
// accumulates it into q: w ← GᵀwG, q ← qG.
func applyJacobiRotation(w, q *Dense, p, r int, c, s float64) {
	n := w.rows
	for k := 0; k < n; k++ {
		akp, akr := w.At(k, p), w.At(k, r)
		w.Set(k, p, c*akp-s*akr)
		w.Set(k, r, s*akp+c*akr)
	}
	for k := 0; k < n; k++ {
		apk, ark := w.At(p, k), w.At(r, k)
		w.Set(p, k, c*apk-s*ark)
		w.Set(r, k, s*apk+c*ark)
	}
	for k := 0; k < n; k++ {
		qkp, qkr := q.At(k, p), q.At(k, r)
		q.Set(k, p, c*qkp-s*qkr)
		q.Set(k, r, s*qkp+c*qkr)
	}
}

// Reconstruct returns Q*diag(Values)*Qᵀ, primarily for testing.
func (e *Eigen) Reconstruct() *Dense {
	n := len(e.Values)
	qd := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qd.Set(i, j, e.Q.At(i, j)*e.Values[j])
		}
	}
	return qd.Mul(e.Q.T())
}

// UpdateValues implements the incremental eigenvalue update of Ning et al.
// used by PrIU-opt (Eq 18): when M' = M + delta is a small perturbation and
// the eigenvectors of M' are approximated by those of M, the updated
// eigenvalues are the diagonal of Qᵀ*M'*Q, i.e. Values[i] + (Qᵀ*delta*Q)[i][i].
// delta must be n×n. The receiver is not modified; updated values are
// returned in the eigenbasis order of e.
func (e *Eigen) UpdateValues(delta *Dense) []float64 {
	n := len(e.Values)
	if delta.rows != n || delta.cols != n {
		panic("mat: UpdateValues dimension mismatch")
	}
	out := make([]float64, n)
	// Each eigenvalue update is independent; chunks carry their own scratch.
	par.For(n, parGrain(2*n*n), func(lo, hi int) {
		tmp := make([]float64, n)
		col := make([]float64, n)
		for i := lo; i < hi; i++ {
			// col = i-th eigenvector.
			for r := 0; r < n; r++ {
				col[r] = e.Q.At(r, i)
			}
			delta.MulVecInto(tmp, col)
			out[i] = e.Values[i] + Dot(col, tmp)
		}
	})
	return out
}

// UpdateValuesGram returns the incremental eigenvalue update for a signed
// Gram perturbation delta = sign·ΔZᵀΔZ: Values[i] + sign·‖ΔZ·qᵢ‖². It costs
// O(k·n²) for a k×n ΔZ instead of forming the n×n delta.
func (e *Eigen) UpdateValuesGram(dz *Dense, sign float64) []float64 {
	n := len(e.Values)
	if dz.cols != n {
		panic("mat: UpdateValuesGram dimension mismatch")
	}
	out := make([]float64, n)
	par.For(n, parGrain(dz.rows*n), func(lo, hi int) {
		col := make([]float64, n)
		prod := make([]float64, dz.rows)
		for i := lo; i < hi; i++ {
			for r := 0; r < n; r++ {
				col[r] = e.Q.At(r, i)
			}
			dz.MulVecInto(prod, col)
			var s float64
			for _, v := range prod {
				s += v * v
			}
			out[i] = e.Values[i] + sign*s
		}
	})
	return out
}

// UpdateValuesLowRank is UpdateValues specialized to delta = -ΔXᵀΔX given the
// removed-row matrix ΔX (k×n). It costs O(k·n²) instead of forming the n×n
// delta: (Qᵀ(−ΔXᵀΔX)Q)[i][i] = −‖ΔX·qᵢ‖².
func (e *Eigen) UpdateValuesLowRank(dx *Dense) []float64 {
	return e.UpdateValuesGram(dx, -1)
}
