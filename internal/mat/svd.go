package mat

import (
	"errors"
	"math"
)

// SVD holds a (possibly truncated) singular value decomposition
// A ≈ U * diag(S) * Vᵀ with singular values sorted descending.
//
// PrIU (Sec 5.1/5.3) applies SVD to the per-iteration provenance matrices
// Σ xᵢxᵢᵀ and C⁽ᵗ⁾ = Σ aᵢ xᵢxᵢᵀ, both of which are symmetric (PSD for linear
// regression, negative-semidefinite-scaled for the linearized logistic rule),
// so the decomposition is computed via the symmetric eigendecomposition:
// for symmetric A = QΛQᵀ, the singular values are |λᵢ| with U = Q and
// V = Q·sign(Λ).
type SVD struct {
	// S holds singular values, descending.
	S []float64
	// U and V hold left/right singular vectors as columns.
	U, V *Dense
}

// NewSVDSym computes the full SVD of a symmetric matrix via Jacobi
// eigendecomposition.
func NewSVDSym(a *Dense) (*SVD, error) {
	eig, err := NewEigenSym(a)
	if err != nil {
		return nil, err
	}
	n := len(eig.Values)
	type pair struct {
		abs  float64
		sign float64
		col  int
	}
	pairs := make([]pair, n)
	for i, v := range eig.Values {
		s := 1.0
		if v < 0 {
			s = -1
		}
		pairs[i] = pair{abs: math.Abs(v), sign: s, col: i}
	}
	// Eigenvalues arrive sorted by value; re-sort by magnitude for SVD order.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && pairs[j-1].abs < pairs[j].abs; j-- {
			pairs[j-1], pairs[j] = pairs[j], pairs[j-1]
		}
	}
	s := make([]float64, n)
	u := NewDense(n, n)
	v := NewDense(n, n)
	for newCol, p := range pairs {
		s[newCol] = p.abs
		for r := 0; r < n; r++ {
			q := eig.Q.At(r, p.col)
			u.Set(r, newCol, q)
			v.Set(r, newCol, q*p.sign)
		}
	}
	return &SVD{S: s, U: u, V: v}, nil
}

// ErrEmptyTruncation is returned when a truncation request keeps no
// singular values.
var ErrEmptyTruncation = errors.New("mat: SVD truncation keeps zero components")

// Truncate returns the rank-r truncation of the decomposition. r is clamped
// to the available rank.
func (d *SVD) Truncate(r int) (*SVD, error) {
	if r <= 0 {
		return nil, ErrEmptyTruncation
	}
	if r > len(d.S) {
		r = len(d.S)
	}
	n := d.U.rows
	u := NewDense(n, r)
	v := NewDense(n, r)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			u.Set(i, j, d.U.At(i, j))
			v.Set(i, j, d.V.At(i, j))
		}
	}
	s := make([]float64, r)
	copy(s, d.S[:r])
	return &SVD{S: s, U: u, V: v}, nil
}

// RankForCoverage returns the smallest rank r such that the spectral norm of
// the rank-r reconstruction is at least (1-eps) of the full spectral norm —
// the premise of the paper's Theorems 6 and 8. Because S is sorted
// descending, the spectral norm of any truncation keeping r ≥ 1 components
// already equals S[0]; the practical criterion used here (and in the
// reference implementation) is energy coverage: Σᵢ≤r sᵢ ≥ (1-eps)·Σ sᵢ.
func (d *SVD) RankForCoverage(eps float64) int {
	var total float64
	for _, v := range d.S {
		total += v
	}
	if total == 0 {
		return 1
	}
	target := (1 - eps) * total
	var run float64
	for i, v := range d.S {
		run += v
		if run >= target {
			return i + 1
		}
	}
	return len(d.S)
}

// Reconstruct returns U*diag(S)*Vᵀ.
func (d *SVD) Reconstruct() *Dense {
	n := d.U.rows
	r := len(d.S)
	us := NewDense(n, r)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			us.Set(i, j, d.U.At(i, j)*d.S[j])
		}
	}
	return us.Mul(d.V.T())
}

// Factors returns the pair (P, V) with P = U·diag(S) so that the cached
// reconstruction is P*Vᵀ — the exact shape PrIU caches per iteration
// (the paper's P⁽ᵗ⁾₁..r and V⁽ᵗ⁾₁..r).
func (d *SVD) Factors() (p, v *Dense) {
	n := d.U.rows
	r := len(d.S)
	p = NewDense(n, r)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			p.Set(i, j, d.U.At(i, j)*d.S[j])
		}
	}
	return p, d.V
}
