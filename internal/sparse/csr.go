// Package sparse provides a compressed sparse row (CSR) matrix, the substrate
// for the paper's sparse-dataset path (RCV1 in Sec 5.3/6): for sparse
// training data PrIU uses only the linearized update rule, exploiting sparse
// matrix-vector products, because SVD factors of sparse provenance matrices
// are dense and would destroy the memory advantage.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Triplet is a coordinate-form entry used to build CSR matrices.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR builds a CSR matrix from triplets. Duplicate (row, col) entries are
// summed. Entries with zero value are kept out of the structure.
func NewCSR(rows, cols int, entries []Triplet) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid dimensions %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of bounds for %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, sorted[i].Col)
			m.vals = append(m.vals, v)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Dims returns the matrix dimensions.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// Density returns NNZ / (rows*cols).
func (m *CSR) Density() float64 {
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}

// At returns the element at (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// Row returns the column indices and values of row i, aliasing internal
// storage.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowDot returns the inner product of row i with the dense vector x.
func (m *CSR) RowDot(i int, x []float64) float64 {
	if len(x) != m.cols {
		panic("sparse: RowDot length mismatch")
	}
	var s float64
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	for k := lo; k < hi; k++ {
		s += m.vals[k] * x[m.colIdx[k]]
	}
	return s
}

// AddScaledRow accumulates a * row_i into dst.
func (m *CSR) AddScaledRow(dst []float64, i int, a float64) {
	if len(dst) != m.cols {
		panic("sparse: AddScaledRow length mismatch")
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	for k := lo; k < hi; k++ {
		dst[m.colIdx[k]] += a * m.vals[k]
	}
}

// rowGrain returns the row-chunk grain so each chunk carries roughly
// par.MinWork stored non-zeros.
func (m *CSR) rowGrain() int {
	if m.rows == 0 {
		return 1
	}
	return par.Grain(m.NNZ() / m.rows)
}

// MulVec returns m*x as a dense vector.
func (m *CSR) MulVec(x []float64) []float64 {
	out := make([]float64, m.rows)
	m.MulVecInto(out, x)
	return out
}

// MulVecInto computes dst = m*x. dst must have length m.rows and must not
// alias x. Output rows are independent, so large matrices run row-parallel;
// the chunk grain adapts to the average row density.
func (m *CSR) MulVecInto(dst, x []float64) {
	if len(x) != m.cols {
		panic("sparse: MulVec length mismatch")
	}
	if len(dst) != m.rows {
		panic("sparse: MulVec output length mismatch")
	}
	par.For(m.rows, m.rowGrain(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = m.RowDot(i, x)
		}
	})
}

// MulVecT returns mᵀ*x as a dense vector. Rows scatter into the whole output,
// so each chunk fills a private dense accumulator over a row block; chunk
// boundaries and the fold order depend only on the shape and grain — never on
// the worker count — so the result is bitwise identical at any pool size
// (small matrices collapse to one chunk and scatter serially).
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic("sparse: MulVecT length mismatch")
	}
	return par.MapReduceDet(m.rows, m.rowGrain(),
		func() []float64 { return make([]float64, m.cols) },
		func(acc []float64, lo, hi int) []float64 {
			for i := lo; i < hi; i++ {
				if x[i] == 0 {
					continue
				}
				m.AddScaledRow(acc, i, x[i])
			}
			return acc
		},
		func(a, b []float64) []float64 {
			for j, v := range b {
				a[j] += v
			}
			return a
		})
}

// RowNorm2 returns the Euclidean norm of row i.
func (m *CSR) RowNorm2(i int) float64 {
	var s float64
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	for k := lo; k < hi; k++ {
		s += m.vals[k] * m.vals[k]
	}
	return math.Sqrt(s)
}

// SelectRows returns a new CSR containing the given rows (in order).
func (m *CSR) SelectRows(rows []int) (*CSR, error) {
	out := &CSR{rows: len(rows), cols: m.cols, rowPtr: make([]int, len(rows)+1)}
	for newR, r := range rows {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("sparse: SelectRows index %d out of range [0,%d)", r, m.rows)
		}
		cols, vals := m.Row(r)
		out.colIdx = append(out.colIdx, cols...)
		out.vals = append(out.vals, vals...)
		out.rowPtr[newR+1] = out.rowPtr[newR] + len(cols)
	}
	return out, nil
}

// FootprintBytes estimates the memory the structure occupies, used by the
// memory-consumption experiment (Table 3).
func (m *CSR) FootprintBytes() int64 {
	return int64(len(m.rowPtr))*8 + int64(len(m.colIdx))*8 + int64(len(m.vals))*8
}
