package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCSR(t *testing.T, rows, cols int, entries []Triplet) *CSR {
	t.Helper()
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randTriplets(rng *rand.Rand, rows, cols, nnz int) []Triplet {
	out := make([]Triplet, nnz)
	for i := range out {
		out[i] = Triplet{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: rng.NormFloat64()}
	}
	return out
}

func denseOf(m *CSR) [][]float64 {
	rows, cols := m.Dims()
	d := make([][]float64, rows)
	for i := range d {
		d[i] = make([]float64, cols)
		cs, vs := m.Row(i)
		for k, c := range cs {
			d[i][c] = vs[k]
		}
	}
	return d
}

func TestNewCSRBasics(t *testing.T) {
	m := mustCSR(t, 3, 4, []Triplet{{0, 1, 2}, {2, 3, -1}, {0, 1, 3}})
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (duplicates summed)", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	if m.At(1, 1) != 0 {
		t.Fatalf("At(1,1) = %v, want 0", m.At(1, 1))
	}
	if m.At(2, 3) != -1 {
		t.Fatalf("At(2,3) = %v", m.At(2, 3))
	}
}

func TestNewCSRDropsExplicitZeros(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{{0, 0, 1}, {0, 0, -1}, {1, 1, 0}})
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(0, 3, nil); err == nil {
		t.Fatal("expected error for zero rows")
	}
	if _, err := NewCSR(2, 2, []Triplet{{5, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-bounds row")
	}
	if _, err := NewCSR(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("expected error for negative col")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		m, err := NewCSR(rows, cols, randTriplets(rng, rows, cols, rng.Intn(20)))
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x)
		d := denseOf(m)
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		m, err := NewCSR(rows, cols, randTriplets(rng, rows, cols, rng.Intn(20)))
		if err != nil {
			return false
		}
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVecT(x)
		d := denseOf(m)
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += d[i][j] * x[i]
			}
			if math.Abs(got[j]-want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowDotAndAddScaledRow(t *testing.T) {
	m := mustCSR(t, 2, 3, []Triplet{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	x := []float64{10, 20, 30}
	if got := m.RowDot(0, x); got != 70 {
		t.Fatalf("RowDot = %v, want 70", got)
	}
	dst := make([]float64, 3)
	m.AddScaledRow(dst, 1, 2)
	if dst[1] != 6 || dst[0] != 0 || dst[2] != 0 {
		t.Fatalf("AddScaledRow = %v", dst)
	}
}

func TestRowNorm2(t *testing.T) {
	m := mustCSR(t, 1, 2, []Triplet{{0, 0, 3}, {0, 1, 4}})
	if m.RowNorm2(0) != 5 {
		t.Fatalf("RowNorm2 = %v", m.RowNorm2(0))
	}
}

func TestSelectRows(t *testing.T) {
	m := mustCSR(t, 3, 2, []Triplet{{0, 0, 1}, {1, 1, 2}, {2, 0, 3}})
	sub, err := m.SelectRows([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0) != 3 || sub.At(1, 0) != 1 {
		t.Fatalf("SelectRows wrong: %v %v", sub.At(0, 0), sub.At(1, 0))
	}
	if _, err := m.SelectRows([]int{9}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDensityAndFootprint(t *testing.T) {
	m := mustCSR(t, 10, 10, []Triplet{{0, 0, 1}, {5, 5, 1}})
	if d := m.Density(); math.Abs(d-0.02) > 1e-12 {
		t.Fatalf("Density = %v", d)
	}
	if m.FootprintBytes() <= 0 {
		t.Fatal("FootprintBytes should be positive")
	}
}
