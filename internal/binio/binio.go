// Package binio provides the little-endian sticky-error binary helpers
// shared by the provenance persistence layer (internal/core) and the
// session-snapshot envelope (priu): one place owns the allocation bounds and
// chunked-read behavior that keep hostile or corrupt streams from demanding
// absurd allocations.
package binio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxElems bounds decoded element counts (1 GiB of float64s). Reads
// additionally grow in chunks, so even an in-bounds lying header fails at
// EOF having allocated no more than the actual stream size.
const MaxElems = 1 << 27

// Writer accumulates little-endian values with a sticky error.
type Writer struct {
	W   *bufio.Writer
	Err error
}

// NewWriter wraps w in a buffered sticky-error writer.
func NewWriter(w io.Writer) *Writer { return &Writer{W: bufio.NewWriter(w)} }

// Bytes writes raw bytes.
func (b *Writer) Bytes(p []byte) {
	if b.Err != nil {
		return
	}
	_, b.Err = b.W.Write(p)
}

// U64 writes a little-endian uint64.
func (b *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Bytes(buf[:])
}

// I64 writes an int64.
func (b *Writer) I64(v int64) { b.U64(uint64(v)) }

// F64 writes a float64 bit pattern.
func (b *Writer) F64(v float64) { b.U64(math.Float64bits(v)) }

// Bool writes a 0/1 word.
func (b *Writer) Bool(v bool) {
	if v {
		b.U64(1)
	} else {
		b.U64(0)
	}
}

// Str writes a length-prefixed string.
func (b *Writer) Str(s string) {
	b.U64(uint64(len(s)))
	b.Bytes([]byte(s))
}

// Floats writes a length-prefixed float slice.
func (b *Writer) Floats(v []float64) {
	b.I64(int64(len(v)))
	for _, x := range v {
		b.F64(x)
	}
}

// Flush commits buffered output, returning the sticky error if any.
func (b *Writer) Flush() error {
	if b.Err != nil {
		return b.Err
	}
	return b.W.Flush()
}

// Reader consumes little-endian values with a sticky error.
type Reader struct {
	R   *bufio.Reader
	Err error
}

// NewReader wraps r in a buffered sticky-error reader.
func NewReader(r io.Reader) *Reader { return &Reader{R: bufio.NewReader(r)} }

// Fail records a decode error (first error wins).
func (b *Reader) Fail(format string, args ...any) {
	if b.Err == nil {
		b.Err = fmt.Errorf(format, args...)
	}
}

// U64 reads a little-endian uint64.
func (b *Reader) U64() uint64 {
	if b.Err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(b.R, buf[:]); err != nil {
		b.Err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// I64 reads an int64.
func (b *Reader) I64() int64 { return int64(b.U64()) }

// F64 reads a float64 bit pattern.
func (b *Reader) F64() float64 { return math.Float64frombits(b.U64()) }

// Bool reads a 0/1 word.
func (b *Reader) Bool() bool { return b.U64() != 0 }

// Str reads a length-prefixed string of at most maxLen bytes.
func (b *Reader) Str(maxLen int) string {
	n := b.U64()
	if b.Err != nil || n > uint64(maxLen) {
		b.Fail("binio: corrupt string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.R, buf); err != nil {
		b.Err = err
		return ""
	}
	return string(buf)
}

// Floats reads a length-prefixed float slice bounded by MaxElems.
func (b *Reader) Floats() []float64 {
	n := b.I64()
	if b.Err != nil || n < 0 || n > MaxElems {
		b.Fail("binio: corrupt float slice length %d", n)
		return nil
	}
	return b.FloatsN(n)
}

// FloatsN reads exactly n floats, growing in bounded chunks so a lying
// header fails at EOF instead of forcing one huge upfront allocation.
func (b *Reader) FloatsN(n int64) []float64 {
	if b.Err != nil || n < 0 || n > MaxElems {
		b.Fail("binio: corrupt float count %d", n)
		return nil
	}
	const chunk = 1 << 16
	cap0 := n
	if cap0 > chunk {
		cap0 = chunk
	}
	out := make([]float64, 0, cap0)
	for int64(len(out)) < n {
		v := b.F64()
		if b.Err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// Magic consumes and verifies a fixed magic string.
func (b *Reader) Magic(want string) error {
	if b.Err != nil {
		return b.Err
	}
	buf := make([]byte, len(want))
	if _, err := io.ReadFull(b.R, buf); err != nil {
		b.Err = fmt.Errorf("binio: reading magic: %w", err)
		return b.Err
	}
	if string(buf) != want {
		b.Err = fmt.Errorf("binio: bad magic %q", buf)
		return b.Err
	}
	return nil
}
