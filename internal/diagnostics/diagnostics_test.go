package diagnostics

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
)

func trainedLinear(t *testing.T, d *dataset.Dataset, lambda float64) *gbm.Model {
	t.Helper()
	// η kept small: dirty rows rescaled by s inflate the Hessian's largest
	// eigenvalue by ~s², and GD requires η < 1/L.
	cfg := gbm.Config{Eta: 0.003, Lambda: lambda, BatchSize: d.N(), Iterations: 3000, Seed: 1}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gbm.TrainLinear(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRankFindsInjectedOutlier(t *testing.T) {
	// A label outlier (a mislabeled sample, the kind of dirty data the
	// paper's cleaning scenario targets) must dominate the influence ranking.
	// Note that rescaling features AND label together (InjectDirty on
	// regression data) keeps the sample consistent with the ground-truth
	// model and is deliberately NOT a strong outlier.
	dirty, err := dataset.GenerateRegression("diag", 120, 4, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	outlier := 43
	dirty.Y[outlier] += 25 // mislabel
	model := trainedLinear(t, dirty, 0.05)
	r, err := NewRanker(dirty, model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := r.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 120 {
		t.Fatalf("ranked %d samples", len(ranked))
	}
	if ranked[0].Index != outlier {
		t.Fatalf("label outlier %d not top-ranked (top: %+v)", outlier, ranked[:3])
	}
	// Sorted descending.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].ParamShift > ranked[i-1].ParamShift+1e-12 {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestTopKAndGroupShift(t *testing.T) {
	d, err := dataset.GenerateRegression("diag2", 80, 3, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	model := trainedLinear(t, d, 0.1)
	r, err := NewRanker(d, model, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("TopK returned %d", len(top))
	}
	shift, err := r.GroupShift(top)
	if err != nil {
		t.Fatal(err)
	}
	if shift <= 0 {
		t.Fatalf("GroupShift = %v", shift)
	}
	// Removing the 5 most influential should shift the parameters at least
	// as much as removing the 5 least influential.
	ranked, err := r.Rank()
	if err != nil {
		t.Fatal(err)
	}
	bottom := make([]int, 5)
	for i := 0; i < 5; i++ {
		bottom[i] = ranked[len(ranked)-1-i].Index
	}
	low, err := r.GroupShift(bottom)
	if err != nil {
		t.Fatal(err)
	}
	if low > shift {
		t.Fatalf("bottom-5 shift %v exceeds top-5 shift %v", low, shift)
	}
	if _, err := r.TopK(0); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := r.TopK(1000); err == nil {
		t.Fatal("expected k error")
	}
}

func TestResidualOutliers(t *testing.T) {
	clean, err := dataset.GenerateRegression("diag3", 100, 4, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	dirty, ids, err := clean.InjectDirty(2, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	model := trainedLinear(t, dirty, 0.05)
	out, err := ResidualOutliers(dirty, model, 4)
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for _, o := range out {
		for _, id := range ids {
			if o == id {
				hit++
			}
		}
	}
	if hit < 1 {
		t.Fatalf("residual outliers %v missed all dirty ids %v", out, ids)
	}
	bin, err := dataset.GenerateBinary("b", 20, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResidualOutliers(bin, model, 2); err == nil {
		t.Fatal("expected task error")
	}
	if _, err := ResidualOutliers(dirty, model, 0); err == nil {
		t.Fatal("expected k error")
	}
}

func TestRankerClassification(t *testing.T) {
	d, err := dataset.GenerateBinary("diag4", 100, 4, 1.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.05, Lambda: 0.05, BatchSize: 25, Iterations: 400, Seed: 2}
	sched, err := gbm.NewSchedule(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := gbm.TrainLogistic(d, cfg, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRanker(d, model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := r.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 100 || ranked[0].ParamShift < ranked[99].ParamShift {
		t.Fatal("classification ranking broken")
	}
}
