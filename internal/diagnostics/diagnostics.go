// Package diagnostics implements the deletion-diagnostics layer that
// motivates PrIU (Sec 1/2 of the paper, after Cook '77 and Koh & Liang '17):
// before deciding *which* training samples to delete, analysts rank them by
// their estimated influence on the trained model. The ranking uses the
// influence-function machinery (one cached Hessian factorization, O(m) per
// sample), and the top-ranked groups are exactly the candidate removal sets
// that PrIU then propagates efficiently.
package diagnostics

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/influence"
	"repro/internal/mat"
)

// SampleInfluence is one training sample's estimated effect on the model.
type SampleInfluence struct {
	// Index is the sample's position in the training set.
	Index int
	// ParamShift is ‖Δw‖₂, the estimated parameter movement if the sample
	// were deleted (the influence-function estimate).
	ParamShift float64
}

// Ranker scores training samples by their estimated deletion influence.
type Ranker struct {
	data   *dataset.Dataset
	model  *gbm.Model
	lambda float64
	infl   *influence.Cached
}

// NewRanker builds the ranking state: one Hessian factorization at w*.
func NewRanker(d *dataset.Dataset, model *gbm.Model, lambda float64) (*Ranker, error) {
	infl, err := influence.NewCached(d, model, lambda)
	if err != nil {
		return nil, err
	}
	return &Ranker{data: d, model: model, lambda: lambda, infl: infl}, nil
}

// Rank returns every sample's influence, sorted by decreasing ParamShift.
// Cost: n influence evaluations of O(m²) each (one triangular solve per
// sample per class).
func (r *Ranker) Rank() ([]SampleInfluence, error) {
	n := r.data.N()
	out := make([]SampleInfluence, n)
	base := r.model.Vec()
	for i := 0; i < n; i++ {
		upd, err := r.infl.Update([]int{i})
		if err != nil {
			return nil, fmt.Errorf("diagnostics: sample %d: %w", i, err)
		}
		out[i] = SampleInfluence{Index: i, ParamShift: mat.Distance(upd.Vec(), base)}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].ParamShift > out[b].ParamShift
	})
	return out, nil
}

// TopK returns the indices of the k most influential samples — the removal
// set an analyst would hand to PrIU for the incremental update.
func (r *Ranker) TopK(k int) ([]int, error) {
	if k < 1 || k > r.data.N() {
		return nil, fmt.Errorf("diagnostics: k=%d out of [1,%d]", k, r.data.N())
	}
	ranked, err := r.Rank()
	if err != nil {
		return nil, err
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Index
	}
	return out, nil
}

// GroupShift estimates the joint parameter shift of deleting a whole group —
// the multi-sample influence estimate the paper compares PrIU against.
func (r *Ranker) GroupShift(removed []int) (float64, error) {
	upd, err := r.infl.Update(removed)
	if err != nil {
		return 0, err
	}
	return mat.Distance(upd.Vec(), r.model.Vec()), nil
}

// ResidualOutliers returns the indices of the k samples with the largest
// absolute residuals under the current model — the classical (model-free)
// diagnostic, provided as the cheap alternative to influence ranking for
// regression tasks.
func ResidualOutliers(d *dataset.Dataset, model *gbm.Model, k int) ([]int, error) {
	if d.Task != dataset.Regression {
		return nil, fmt.Errorf("diagnostics: ResidualOutliers requires regression data, got %v", d.Task)
	}
	if k < 1 || k > d.N() {
		return nil, fmt.Errorf("diagnostics: k=%d out of [1,%d]", k, d.N())
	}
	preds := model.PredictLinear(d.X)
	type resid struct {
		idx int
		abs float64
	}
	rs := make([]resid, d.N())
	for i := range rs {
		a := preds[i] - d.Y[i]
		if a < 0 {
			a = -a
		}
		rs[i] = resid{idx: i, abs: a}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].abs > rs[b].abs })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = rs[i].idx
	}
	return out, nil
}
