package repro

// Serial-vs-parallel kernel benchmarks. Each Benchmark*Parallel measures a
// serial baseline (pool forced to one worker) inside the benchmark, then
// times the same operation with the full worker pool and reports the ratio
// as a "speedup" metric, so one run on a multi-core machine shows whether
// the parallel kernels pay off:
//
//	go test -bench=Parallel -benchtime=10x
//
// On a single-core host GOMAXPROCS is 1, every kernel falls back to its
// serial path, and the reported speedup is ~1.0 by construction.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/sparse"
)

// benchSerialVsParallel times op with one worker, then with the full pool in
// the measured loop, and reports serial/parallel as "speedup".
func benchSerialVsParallel(b *testing.B, op func()) {
	b.Helper()
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	op() // warm caches
	serial := time.Duration(1 << 62)
	for r := 0; r < 3; r++ {
		start := time.Now()
		op()
		if d := time.Since(start); d < serial {
			serial = d
		}
	}
	par.SetWorkers(0) // full GOMAXPROCS parallelism
	op()              // warm the pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	b.StopTimer()
	if perOp := b.Elapsed() / time.Duration(b.N); perOp > 0 {
		b.ReportMetric(float64(serial)/float64(perOp), "speedup")
	}
}

func randDense(rng *rand.Rand, rows, cols int) *mat.Dense {
	d := mat.NewDense(rows, cols)
	for i := range d.Data() {
		d.Data()[i] = rng.NormFloat64()
	}
	return d
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// BenchmarkMatVecParallel: dense m*x over 100k rows — the provenance-cache
// apply shape of the PrIU update loop.
func BenchmarkMatVecParallel(b *testing.B) {
	rng := benchRand(1)
	const rows, cols = 100_000, 64
	m := randDense(rng, rows, cols)
	x := randVec(rng, cols)
	dst := make([]float64, rows)
	benchSerialVsParallel(b, func() { m.MulVecInto(dst, x) })
}

// BenchmarkMatVecTParallel: dense mᵀ*x over 100k rows — the gradient
// aggregation shape (MapReduce with per-worker accumulators).
func BenchmarkMatVecTParallel(b *testing.B) {
	rng := benchRand(2)
	const rows, cols = 100_000, 64
	m := randDense(rng, rows, cols)
	x := randVec(rng, rows)
	dst := make([]float64, cols)
	benchSerialVsParallel(b, func() { m.MulVecTInto(dst, x) })
}

// BenchmarkGramParallel: XᵀX over 100k rows — the PrIU-opt offline shape and
// the heaviest dense reduction in the stack.
func BenchmarkGramParallel(b *testing.B) {
	rng := benchRand(3)
	const rows, cols = 100_000, 32
	m := randDense(rng, rows, cols)
	dst := mat.NewDense(cols, cols)
	benchSerialVsParallel(b, func() { m.GramInto(dst) })
}

// BenchmarkAddScaledParallel: row-blocked in-place AXPY over a large matrix.
func BenchmarkAddScaledParallel(b *testing.B) {
	rng := benchRand(4)
	const rows, cols = 100_000, 64
	m := randDense(rng, rows, cols)
	v := randDense(rng, rows, cols)
	benchSerialVsParallel(b, func() { m.AddScaled(v, 1e-9) })
}

// BenchmarkSpMVParallel: CSR row-parallel SpMV at RCV1-like density.
func BenchmarkSpMVParallel(b *testing.B) {
	rng := benchRand(5)
	const rows, cols, perRow = 200_000, 2_000, 20
	entries := make([]sparse.Triplet, 0, rows*perRow)
	for i := 0; i < rows; i++ {
		for k := 0; k < perRow; k++ {
			entries = append(entries, sparse.Triplet{
				Row: i, Col: rng.Intn(cols), Val: rng.NormFloat64(),
			})
		}
	}
	csr, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(rng, cols)
	dst := make([]float64, rows)
	benchSerialVsParallel(b, func() { csr.MulVecInto(dst, x) })
}

// BenchmarkSpMVTParallel: CSR mᵀ*x — per-worker dense accumulators merged.
func BenchmarkSpMVTParallel(b *testing.B) {
	rng := benchRand(6)
	const rows, cols, perRow = 200_000, 2_000, 20
	entries := make([]sparse.Triplet, 0, rows*perRow)
	for i := 0; i < rows; i++ {
		for k := 0; k < perRow; k++ {
			entries = append(entries, sparse.Triplet{
				Row: i, Col: rng.Intn(cols), Val: rng.NormFloat64(),
			})
		}
	}
	csr, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(rng, rows)
	benchSerialVsParallel(b, func() { csr.MulVecT(x) })
}

// BenchmarkMulParallel: dense GEMM, row-parallel over the left operand.
func BenchmarkMulParallel(b *testing.B) {
	rng := benchRand(7)
	const n = 256
	a := randDense(rng, n, n)
	c := randDense(rng, n, n)
	dst := mat.NewDense(n, n)
	benchSerialVsParallel(b, func() { mat.MulInto(dst, a, c) })
}
