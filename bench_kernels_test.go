package repro

// Kernel benchmarks for the blocked/parallel compute core, gated by
// cmd/benchguard via BENCH_BASELINE.json.
//
// BenchmarkGEMMBlocked and BenchmarkGramBlocked pin the pool to one worker
// and compare the cache-blocked kernels against the scalar triple loops they
// replaced, so their "speedup" metric isolates the blocking gain and is
// core-count independent (the ≥1.5× acceptance floor holds on a 1-core
// container). BenchmarkEigenSym and BenchmarkCaptureParallel compare serial
// vs full-pool execution of the same code, so their floor on a 1-core host is
// ~1.0× and multi-core runners report the real parallel gain.
//
//	go test -bench='GEMMBlocked|GramBlocked|EigenSym|CaptureParallel' -benchtime=2x -timeout=300s

import (
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/priu"
)

// benchScalarVsBlocked times baseline (min of 3) and then op, both pinned to
// one worker, and reports baseline/op as "speedup".
func benchScalarVsBlocked(b *testing.B, baseline, op func()) {
	b.Helper()
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	baseline() // warm caches
	scalar := time.Duration(1 << 62)
	for r := 0; r < 3; r++ {
		start := time.Now()
		baseline()
		if d := time.Since(start); d < scalar {
			scalar = d
		}
	}
	op() // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	b.StopTimer()
	if perOp := b.Elapsed() / time.Duration(b.N); perOp > 0 {
		b.ReportMetric(float64(scalar)/float64(perOp), "speedup")
	}
}

func gemmBenchSize() int {
	if testing.Short() {
		return 192
	}
	return 512
}

// scalarMulInto is the pre-blocking MulInto inner loop, kept as the benchmark
// baseline.
func scalarMulInto(dst, a, b *mat.Dense) {
	ar, k := a.Dims()
	_, n := b.Dims()
	for i := 0; i < ar; i++ {
		di := dst.Data()[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a.Data()[i*k : (i+1)*k]
		for p, av := range ai {
			bk := b.Data()[p*n : (p+1)*n]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// BenchmarkGEMMBlocked: square GEMM, blocked micro-kernel vs the scalar
// triple loop, single-threaded.
func BenchmarkGEMMBlocked(b *testing.B) {
	rng := benchRand(31)
	n := gemmBenchSize()
	x := randDense(rng, n, n)
	y := randDense(rng, n, n)
	dst := mat.NewDense(n, n)
	benchScalarVsBlocked(b,
		func() { scalarMulInto(dst, x, y) },
		func() { mat.MulInto(dst, x, y) })
}

// BenchmarkGramBlocked: XᵀX at the square shape of the acceptance floor,
// blocked upper-triangle tiles vs the rank-1 AddOuter row loop,
// single-threaded.
func BenchmarkGramBlocked(b *testing.B) {
	rng := benchRand(32)
	n := gemmBenchSize()
	x := randDense(rng, n, n)
	dst := mat.NewDense(n, n)
	scalarGram := func() {
		dst.Zero()
		for i := 0; i < n; i++ {
			ri := x.Row(i)
			mat.AddOuter(dst, ri, ri, 1)
		}
	}
	benchScalarVsBlocked(b, scalarGram, func() { x.GramInto(dst) })
}

// BenchmarkEigenSym: symmetric eigendecomposition (tournament Jacobi),
// serial vs full pool.
func BenchmarkEigenSym(b *testing.B) {
	rng := benchRand(33)
	n := 96
	if !testing.Short() {
		n = 192
	}
	a := randDense(rng, n+2, n)
	s := a.Gram()
	benchSerialVsParallel(b, func() {
		if _, err := mat.NewEigenSym(s); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCaptureParallel: full training + provenance capture for the
// linear family with full caches — the offline phase the tentpole fans out —
// serial vs full pool.
func BenchmarkCaptureParallel(b *testing.B) {
	rows, feats, iters := 2000, 96, 60
	if testing.Short() {
		rows, feats, iters = 600, 48, 30
	}
	ds, err := priu.GenerateRegression("bench-capture", rows, feats, 0.1, 34)
	if err != nil {
		b.Fatal(err)
	}
	benchSerialVsParallel(b, func() {
		if _, err := priu.Train(priu.FamilyLinear, ds,
			priu.WithFullCaches(), priu.WithIterations(iters)); err != nil {
			b.Fatal(err)
		}
	})
}
