// Package repro is a from-scratch Go reproduction of "PrIU: A
// Provenance-Based Approach for Incrementally Updating Regression Models"
// (Wu, Tannen, Davidson; SIGMOD 2020).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmark harness in bench_test.go
// regenerates every table and figure of the paper's evaluation section;
// cmd/priubench runs the same experiments as a CLI.
package repro
