// Package repro is a from-scratch Go reproduction of "PrIU: A
// Provenance-Based Approach for Incrementally Updating Regression Models"
// (Wu, Tannen, Davidson; SIGMOD 2020).
//
// The public entry point is the repro/priu package: a uniform Updater
// interface over every model family (train once with provenance capture,
// then apply any deletion incrementally), functional options for
// configuration, a by-name family registry, and self-contained snapshots.
// repro/priu/service builds the versioned, multi-tenant HTTP deletion
// service on it (v1 + v2 with typed errors, snapshot import/export and
// NDJSON streaming deletions; API-key tenants with per-tenant quotas and
// rate limits), repro/priu/client is the typed Go SDK for the /v2 surface,
// and repro/priu/bench reproduces the paper's evaluation. Everything under
// internal/ is implementation detail.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmark harness in bench_test.go
// regenerates every table and figure of the paper's evaluation section;
// cmd/priubench runs the same experiments as a CLI.
//
// # Parallel architecture
//
// Every hot kernel routes its row loop through internal/par, a chunked
// worker pool with a serial fallback below a per-kernel work cutoff:
//
//   - internal/mat: MulInto and GramInto/RowGramInto are cache-blocked
//     (4-row rank-2 GEMM micro-kernel; 4×4 upper-triangle Gram register
//     tiles over L2-sized row blocks, lower triangle mirrored) and
//     row-block-parallel; MulVecInto, MulVecTInto, AddScaled and the
//     incremental eigenvalue updates run block-parallel; NewEigenSym is a
//     tournament-ordered parallel cyclic Jacobi with an incrementally
//     maintained off-diagonal norm.
//   - internal/sparse: CSR SpMV is row-parallel with a grain that adapts to
//     the average row density; SpMVᵀ reduces per-chunk dense accumulators.
//   - internal/core: provenance capture is parallel — linear capture fans
//     independent iterations, logistic/multinomial capture fan the
//     per-member linearization dots and per-class cache builds, and
//     weightedGramCache routes through the blocked Gram kernels — and the
//     PrIU-opt eigenbasis recurrences (Eq 17 / Sec 5.4) split across
//     coordinates, multinomial classes update in parallel, the sparse
//     logistic replay fans the batch out with private step vectors.
//   - priu/service: the session store is hash-sharded (per-shard locks and
//     counters), batched deletions execute independent sessions' updates
//     concurrently on the same pool, and an optional LRU budget
//     (-max-sessions / -max-bytes) bounds resident provenance.
//
// Every kernel is bitwise-deterministic at any worker count: outputs are
// written by exactly one chunk, or reduced via par.MapReduceDet, whose chunk
// plan and fold order depend only on shape and grain — never on the pool
// size or chunk completion order — so parallel capture cannot perturb the
// store/fleet snapshot contract. Chunk grains derive from measured cutoffs:
// the cmds call par.Calibrate at startup, and -par-minwork /
// PRIU_PAR_MINWORK pin the cutoffs for reproducible runs (calibration only
// steers chunking, never results).
//
// priu.SetWorkers is the single parallelism knob (priuserve -workers);
// Benchmark*Parallel in bench_parallel_test.go reports the measured
// serial-vs-parallel speedup of each kernel, bench_kernels_test.go gates the
// blocked kernels' single-thread speedup over the scalar loops they replaced
// (make kernel-bench), and CI archives the metrics per commit and gates them
// against BENCH_BASELINE.json via cmd/benchguard.
//
// # Tiered session store
//
// repro/priu/store extracts session storage from the service behind a Store
// interface (Get/Put/Delete/Touch/Range/Stats) with two tiers: the sharded
// in-memory LRU (store.Memory) and a spill-to-disk wrapper (store.Tiered,
// priuserve -store-dir). The deletion guarantee the paper is about survives
// every tier move: an evicted session spills as a self-contained session
// snapshot — family, training data, cumulative deletion log, provenance —
// written atomically (temp file + rename) under a content-addressed name;
// the next touch restores it, replaying the deletion log, with singleflight
// collapsing concurrent restores of the same cold session. SIGTERM snapshots
// all dirty resident sessions and boot re-indexes the spill directory, so a
// kill/restart serves every prior session with a bitwise-identical model and
// every honored deletion still deleted. All seven engine families persist,
// including the PrIU-opt variants, whose eigendecompositions are rebuilt
// from the persisted stabilized coefficients on load (internal/core
// persist_opt.go) in capture's exact accumulation order. The crash-recovery
// suite (make spill-smoke) and BenchmarkSpillRestore (gated by benchguard)
// keep the round trip honest.
//
// # Spill-tier lifecycle
//
// The disk tier is run by a lifecycle manager (priu/store/lifecycle.go):
// a bounded write-behind queue snapshots sessions eagerly at registration
// and after every applied deletion, so an LRU eviction usually finds its
// victim clean-with-current-disk-copy and just drops the resident copy —
// no spill IO under the victim's lock on the evicting request (backpressure
// falls back to the synchronous spill; BenchmarkEvictLatency gates the win).
// priuserve -spill-max-bytes bounds the spill directory with LRU file
// eviction (dirty residents' warm backups first, then cold sessions — whose
// drop is a counted disk_eviction), an age-based GC sweeps orphaned files,
// and the spill_dir_bytes gauge is maintained incrementally from a boot-time
// seed scan. Resident-tier evictions are fair-share across tenants (the
// tenant furthest over its equal share of resident bytes loses its LRU
// session), and per-tenant max_spill_bytes caps bound each tenant's disk
// share (HTTP 507 "spill_quota" at the cap). The lifecycle is hardened by a
// property/oracle churn suite and an injected-fault chaos suite in
// priu/store, plus native fuzz targets (make fuzz-smoke) over the snapshot,
// spill-envelope and CSR-upload decoders; make cover gates the storage and
// service layers' statement coverage.
//
// # Multi-tenant API
//
// The service resolves "Authorization: Bearer" API keys to tenants through a
// hot-reloadable JSON key file (priuserve -auth-keys, SIGHUP to reload;
// constant-time key comparison over SHA-256 digests). Each tenant gets its
// own session namespace — storage IDs are "tenant/sess-N", so tenants cannot
// see, list, delete or snapshot each other's sessions, and the namespace
// survives spills and restarts because it rides in the session ID — plus a
// hard session/byte quota enforced atomically at registration (typed 429
// "insufficient_quota"; the store's eviction budget stays a cache boundary,
// never a quota bypass) and a token-bucket rate limit over deletion rows on
// the streaming endpoint (typed "rate_limited" with retry_after_seconds, or
// HTTP 429 + Retry-After when the bucket is empty at open). -auth selects
// off/optional/required; anonymous callers under off/optional behave exactly
// like the pre-tenant service. GET /v2/tenants/self/stats reports the
// calling tenant's usage and counters. repro/priu/client wraps all of /v2 —
// session CRUD, snapshot streaming, full-duplex deletions with server-digest
// verification and Retry-After-aware SendWait — and `make auth-smoke` drives
// a real authenticated priuserve through the SDK, cmd/priutrain -server and
// examples/client end to end.
//
// # What-if query plane
//
// POST /v2/sessions/{id}/whatif turns the provenance capture into a query
// surface: a batch of candidate deletion sets (JSON body, or an interactive
// NDJSON stream) is evaluated against clone-on-read state forked from the
// session — never the session's own updater, deletion log or spill file —
// and answered per set with the hypothetical parameter digest and metric
// deltas versus the live model, bitwise identical to committing the same
// sorted set. The priu.WhatIfer capability (internal/core whatif.go) gives
// the opt families a forkable incremental cursor (Apply folds one removed
// row into the partial sums, Eval rolls the eigenbasis recurrences);
// families without the capability fall back to pure replay, same answers.
// priu.WhatIfPlanner arranges each batch as a prefix tree over deletion IDs
// — overlapping sets apply their shared prefix once and fork, duplicates
// memoize — and fans leaf evaluations onto the worker pool (priuserve
// -whatif-workers), with a per-tenant concurrency cap (-whatif-limit, typed
// 429 "whatif_limited"). Sessions are pinned into the resident tier for the
// duration of what-if and snapshot-export streams so the LRU evictor cannot
// spill them mid-read. GET /v2/meta describes the server (version, families,
// feature flags, limits), /v1 responses carry Deprecation/Sunset headers,
// and both session listings paginate (?limit=&cursor=). The SDK exposes
// WhatIf/StreamWhatIf and an auto-paginating session iterator;
// `make whatif-smoke` gates digest-faithfulness end to end and
// BenchmarkWhatIfBatch gates the prefix-sharing speedup via benchguard.
package repro
