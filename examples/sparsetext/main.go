// Sparse-text scenario (the paper's RCV1 path, Sec 5.3): binary logistic
// regression over a high-dimensional sparse CSR feature matrix. The dense
// optimizations (cached Σ-matrices, SVD) don't apply here; PrIU instead
// caches only the per-sample linearization coefficients and replays the
// linearized rule without the removed samples — a modest but real win over
// retraining, matching the paper's ~10% observation.
//
// Run with: go run ./examples/sparsetext
package main

import (
	"fmt"
	"log"
	"time"

	"repro/priu"
)

func main() {
	// RCV1-shaped: 47,236 features, ~0.1% density.
	d, err := priu.GenerateSparseBinary("rcv1-like", 3000, 47_236, 60, 13)
	if err != nil {
		log.Fatal(err)
	}
	rows, cols := d.X.Dims()
	fmt.Printf("sparse dataset: %d×%d, %d non-zeros (density %.4f%%)\n",
		rows, cols, d.X.NNZ(), 100*d.X.Density())

	opts := []priu.Option{
		priu.WithEta(0.05), priu.WithLambda(0.5),
		priu.WithBatchSize(300), priu.WithIterations(300), priu.WithSeed(17),
	}
	prov, err := priu.Train(priu.FamilySparseLogistic, d, opts...)
	if err != nil {
		log.Fatal(err)
	}
	acc, _ := priu.AccuracySparse(prov.Model(), d)
	fmt.Printf("initial model training accuracy: %.4f\n", acc)
	fmt.Printf("provenance cache: %.2f MB (coefficients only — no dense factors)\n",
		float64(prov.FootprintBytes())/(1<<20))

	// Remove 0.5% of the samples.
	removed := make([]int, 15)
	for i := range removed {
		removed[i] = i * 199
	}
	t0 := time.Now()
	upd, err := prov.Update(removed)
	if err != nil {
		log.Fatal(err)
	}
	priuDt := time.Since(t0)

	t0 = time.Now()
	retrained, err := priu.Retrain(priu.FamilySparseLogistic, d, removed, opts...)
	if err != nil {
		log.Fatal(err)
	}
	retrainDt := time.Since(t0)

	cmp, _ := priu.Compare(upd, retrained)
	fmt.Printf("update after deleting %d samples:\n", len(removed))
	fmt.Printf("  PrIU (sparse path): %7.1fms\n", priuDt.Seconds()*1000)
	fmt.Printf("  retraining:         %7.1fms\n", retrainDt.Seconds()*1000)
	fmt.Printf("  speed-up %.2fx (modest, as the paper reports for sparse data)\n",
		retrainDt.Seconds()/priuDt.Seconds())
	fmt.Printf("  model agreement: %s\n", cmp)
}
