// Quickstart: train a ridge linear-regression model with mini-batch SGD,
// capture provenance with PrIU, delete a handful of training samples, and
// get the updated model without retraining — all through the public
// repro/priu package.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/priu"
)

func main() {
	// 1. A training set: 5000 samples, 18 features (SGEMM-shaped), plus a
	//    held-out validation split.
	full, err := priu.GenerateRegression("quickstart", 5000, 18, 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	train, valid, err := full.Split(0.9, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline: train the initial model while capturing provenance. The
	//    same options drive training, retraining and incremental updates
	//    through one deterministic batch schedule.
	opts := []priu.Option{
		priu.WithEta(5e-3), priu.WithLambda(0.1),
		priu.WithBatchSize(200), priu.WithIterations(500), priu.WithSeed(1),
	}
	prov, err := priu.Train(priu.FamilyLinear, train, opts...)
	if err != nil {
		log.Fatal(err)
	}
	mseInit, _ := priu.MSE(prov.Model(), valid)
	fmt.Printf("initial model: validation MSE %.4f\n", mseInit)

	// 3. Someone flags 50 samples for deletion.
	removed := make([]int, 50)
	for i := range removed {
		removed[i] = i * 7 // any indices into the training set
	}

	// 4. Online: incremental update vs retraining from scratch.
	t0 := time.Now()
	updated, err := prov.Update(removed)
	if err != nil {
		log.Fatal(err)
	}
	priuTime := time.Since(t0)

	t0 = time.Now()
	retrained, err := priu.Retrain(priu.FamilyLinear, train, removed, opts...)
	if err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(t0)

	cmp, err := priu.Compare(updated, retrained)
	if err != nil {
		log.Fatal(err)
	}
	mseUpd, _ := priu.MSE(updated, valid)
	fmt.Printf("after deleting %d samples:\n", len(removed))
	fmt.Printf("  PrIU update: %8.2fms, validation MSE %.4f\n", priuTime.Seconds()*1000, mseUpd)
	fmt.Printf("  retraining:  %8.2fms\n", retrainTime.Seconds()*1000)
	fmt.Printf("  speed-up %.1fx; models agree: %s\n",
		retrainTime.Seconds()/priuTime.Seconds(), cmp)

	// 5. Snapshots: the captured provenance (plus the training set) bundles
	//    into one stream and resurrects in a fresh process.
	var snap bytes.Buffer
	if err := priu.WriteSnapshot(&snap, priu.FamilyLinear, train, prov); err != nil {
		log.Fatal(err)
	}
	_, _, restored, err := priu.ReadSnapshot(&snap)
	if err != nil {
		log.Fatal(err)
	}
	again, err := restored.Update(removed)
	if err != nil {
		log.Fatal(err)
	}
	cmp, _ = priu.Compare(again, updated)
	fmt.Printf("snapshot round-trip: restored update matches: %s\n", cmp)
}
