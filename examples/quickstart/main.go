// Quickstart: train a ridge linear-regression model with mini-batch SGD,
// capture provenance with PrIU, delete a handful of training samples, and
// get the updated model without retraining.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/metrics"
)

func main() {
	// 1. A training set: 5000 samples, 18 features (SGEMM-shaped), plus a
	//    held-out validation split.
	full, err := dataset.GenerateRegression("quickstart", 5000, 18, 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	train, valid, err := full.Split(0.9, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Hyperparameters and the deterministic mini-batch schedule shared by
	//    training, retraining and incremental updates.
	cfg := gbm.Config{Eta: 5e-3, Lambda: 0.1, BatchSize: 200, Iterations: 500, Seed: 1}
	sched, err := gbm.NewSchedule(train.N(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Offline: train the initial model while capturing provenance.
	prov, err := core.CaptureLinear(train, cfg, sched, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mseInit, _ := metrics.MSE(prov.Model(), valid)
	fmt.Printf("initial model: validation MSE %.4f\n", mseInit)

	// 4. Someone flags 50 samples for deletion.
	removed := make([]int, 50)
	for i := range removed {
		removed[i] = i * 7 // any indices into the training set
	}

	// 5. Online: incremental update vs retraining from scratch.
	t0 := time.Now()
	updated, err := prov.Update(removed)
	if err != nil {
		log.Fatal(err)
	}
	priuTime := time.Since(t0)

	rm, _ := gbm.RemovalSet(train.N(), removed)
	t0 = time.Now()
	retrained, err := gbm.TrainLinear(train, cfg, sched, rm)
	if err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(t0)

	cmp, err := metrics.Compare(updated, retrained)
	if err != nil {
		log.Fatal(err)
	}
	mseUpd, _ := metrics.MSE(updated, valid)
	fmt.Printf("after deleting %d samples:\n", len(removed))
	fmt.Printf("  PrIU update: %8.2fms, validation MSE %.4f\n", priuTime.Seconds()*1000, mseUpd)
	fmt.Printf("  retraining:  %8.2fms\n", retrainTime.Seconds()*1000)
	fmt.Printf("  speed-up %.1fx; models agree: %s\n",
		retrainTime.Seconds()/priuTime.Seconds(), cmp)
}
