// Interpretability scenario (the paper's second experiment set): an analyst
// repeatedly removes different subsets of training samples — here, each of
// the classes of a Cov-shaped multiclass task in turn — to understand how
// much each group drives the model. Retraining per probe is the bottleneck;
// PrIU captures provenance once and answers every probe incrementally.
//
// Run with: go run ./examples/interpretability
package main

import (
	"fmt"
	"log"
	"time"

	"repro/priu"
)

func main() {
	d, err := priu.GenerateMulticlass("cov-like", 6000, 54, 7, 2.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	train, valid, err := d.Split(0.9, 11)
	if err != nil {
		log.Fatal(err)
	}
	opts := []priu.Option{
		priu.WithEta(1e-2), priu.WithLambda(0.001),
		priu.WithBatchSize(200), priu.WithIterations(150), priu.WithSeed(5),
	}

	fmt.Println("capturing provenance once (offline)...")
	t0 := time.Now()
	prov, err := priu.Train(priu.FamilyMultinomial, train, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture done in %.2fs\n\n", time.Since(t0).Seconds())
	accFull, _ := priu.Accuracy(prov.Model(), valid)
	fmt.Printf("full model validation accuracy: %.4f\n\n", accFull)

	// Probe: for each class, remove a sample of up to 200 of its training
	// rows and see how the model shifts — the "influence of a group".
	fmt.Printf("%-8s %9s %12s %12s %12s\n", "class", "#removed", "PrIU(ms)", "Δaccuracy", "‖Δw‖")
	var totalPriu, totalRetrain time.Duration
	for k := 0; k < train.Classes; k++ {
		var removed []int
		for i := 0; i < train.N() && len(removed) < 200; i++ {
			if int(train.Y[i]) == k {
				removed = append(removed, i)
			}
		}
		t0 = time.Now()
		upd, err := prov.Update(removed)
		if err != nil {
			log.Fatal(err)
		}
		priuDt := time.Since(t0)
		totalPriu += priuDt

		t0 = time.Now()
		if _, err := priu.Retrain(priu.FamilyMultinomial, train, removed, opts...); err != nil {
			log.Fatal(err)
		}
		totalRetrain += time.Since(t0)

		acc, _ := priu.Accuracy(upd, valid)
		cmp, _ := priu.Compare(upd, prov.Model())
		fmt.Printf("%-8d %9d %12.2f %+12.4f %12.4g\n",
			k, len(removed), priuDt.Seconds()*1000, acc-accFull, cmp.L2Distance)
	}
	fmt.Printf("\nall %d probes: PrIU %.2fs vs retraining %.2fs (%.1fx)\n",
		train.Classes, totalPriu.Seconds(), totalRetrain.Seconds(),
		totalRetrain.Seconds()/totalPriu.Seconds())
}
