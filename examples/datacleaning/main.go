// Data cleaning scenario (the paper's first experiment set): a training set
// is corrupted with dirty samples before training; once the dirty rows are
// detected, PrIU removes their influence from the already-trained logistic
// model incrementally — no retraining — and validation accuracy recovers.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"
	"time"

	"repro/priu"
)

func main() {
	// A HIGGS-shaped binary classification task.
	clean, err := priu.GenerateBinary("higgs-like", 8000, 28, 0.9, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, valid, err := clean.Split(0.9, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Corrupt 2% of the training rows by rescaling their features 25x —
	// the paper's dirty-sample construction. The analyst trains on T_dirty
	// unaware of the corruption.
	dirtyCount := train.N() / 50
	dirty, dirtyIDs, err := train.InjectDirty(dirtyCount, 25, 99)
	if err != nil {
		log.Fatal(err)
	}

	opts := []priu.Option{
		priu.WithEta(5e-3), priu.WithLambda(0.01),
		priu.WithBatchSize(500), priu.WithIterations(400), priu.WithSeed(3),
	}

	fmt.Printf("training on corrupted data (%d dirty of %d samples)...\n", dirtyCount, dirty.N())
	prov, err := priu.Train(priu.FamilyLogistic, dirty, opts...)
	if err != nil {
		log.Fatal(err)
	}
	accDirty, _ := priu.Accuracy(prov.Model(), valid)
	fmt.Printf("model trained on dirty data: validation accuracy %.4f\n", accDirty)

	// The cleaning pipeline identifies the dirty rows (here we know them);
	// PrIU propagates their deletion through the captured provenance.
	t0 := time.Now()
	cleaned, err := prov.Update(dirtyIDs)
	if err != nil {
		log.Fatal(err)
	}
	updTime := time.Since(t0)
	accClean, _ := priu.Accuracy(cleaned, valid)
	fmt.Printf("after removing dirty samples via PrIU (%.1fms): accuracy %.4f\n",
		updTime.Seconds()*1000, accClean)

	// Reference: full retraining without the dirty rows.
	t0 = time.Now()
	retrained, err := priu.Retrain(priu.FamilyLogistic, dirty, dirtyIDs, opts...)
	if err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(t0)
	accRetrain, _ := priu.Accuracy(retrained, valid)
	cmp, _ := priu.Compare(cleaned, retrained)
	fmt.Printf("reference retraining (%.1fms): accuracy %.4f\n",
		retrainTime.Seconds()*1000, accRetrain)
	fmt.Printf("speed-up %.1fx; model agreement: %s\n",
		retrainTime.Seconds()/updTime.Seconds(), cmp)
}
