// Data cleaning scenario (the paper's first experiment set): a training set
// is corrupted with dirty samples before training; once the dirty rows are
// detected, PrIU removes their influence from the already-trained logistic
// model incrementally — no retraining — and validation accuracy recovers.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/metrics"
)

func main() {
	// A HIGGS-shaped binary classification task.
	clean, err := dataset.GenerateBinary("higgs-like", 8000, 28, 0.9, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, valid, err := clean.Split(0.9, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Corrupt 2% of the training rows by rescaling their features 25x —
	// the paper's dirty-sample construction. The analyst trains on T_dirty
	// unaware of the corruption.
	dirtyCount := train.N() / 50
	dirty, dirtyIDs, err := train.InjectDirty(dirtyCount, 25, 99)
	if err != nil {
		log.Fatal(err)
	}

	cfg := gbm.Config{Eta: 5e-3, Lambda: 0.01, BatchSize: 500, Iterations: 400, Seed: 3}
	sched, err := gbm.NewSchedule(dirty.N(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training on corrupted data (%d dirty of %d samples)...\n", dirtyCount, dirty.N())
	prov, err := core.CaptureLogistic(dirty, cfg, sched, nil, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	accDirty, _ := metrics.Accuracy(prov.Model(), valid)
	fmt.Printf("model trained on dirty data: validation accuracy %.4f\n", accDirty)

	// The cleaning pipeline identifies the dirty rows (here we know them);
	// PrIU propagates their deletion through the captured provenance.
	t0 := time.Now()
	cleaned, err := prov.Update(dirtyIDs)
	if err != nil {
		log.Fatal(err)
	}
	updTime := time.Since(t0)
	accClean, _ := metrics.Accuracy(cleaned, valid)
	fmt.Printf("after removing dirty samples via PrIU (%.1fms): accuracy %.4f\n",
		updTime.Seconds()*1000, accClean)

	// Reference: full retraining without the dirty rows.
	rm, _ := gbm.RemovalSet(dirty.N(), dirtyIDs)
	t0 = time.Now()
	retrained, err := gbm.TrainLogistic(dirty, cfg, sched, rm)
	if err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(t0)
	accRetrain, _ := metrics.Accuracy(retrained, valid)
	cmp, _ := metrics.Compare(cleaned, retrained)
	fmt.Printf("reference retraining (%.1fms): accuracy %.4f\n",
		retrainTime.Seconds()*1000, accRetrain)
	fmt.Printf("speed-up %.1fx; model agreement: %s\n",
		retrainTime.Seconds()/updTime.Seconds(), cmp)
}
