// Example client demonstrates the priu/client SDK against a live deletion
// service: authenticate with a tenant API key, train a session from locally
// generated data, stream deletion batches on one full-duplex connection
// (verifying every server digest, and waiting out rate limits when the
// tenant's token bucket throttles a batch), round-trip the session through
// snapshot export + restore, and read the tenant's own usage counters.
//
// Run a server and point the example at it:
//
//	go run ./cmd/priuserve -addr :8080 -auth optional -auth-keys keys.json
//	go run ./examples/client -addr http://localhost:8080 -key ak_demo_key
//
// Without -key the example runs as the anonymous tenant (allowed unless the
// server uses -auth required).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/priu/client"
	"repro/priu/service"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "priuserve base URL")
	key := flag.String("key", "", "tenant API key (empty = anonymous)")
	flag.Parse()

	ctx := context.Background()
	cl := client.New(*addr, client.WithAPIKey(*key))

	h, err := cl.Health(ctx)
	if err != nil {
		log.Fatalf("probing %s: %v", *addr, err)
	}
	fmt.Printf("connected: priuserve %s, %d workers, %d resident sessions\n", h.Version, h.Workers, h.Sessions)

	// Train a small ridge-regression session from synthetic data.
	const n, m = 240, 6
	rng := rand.New(rand.NewSource(42))
	truth := make([]float64, m)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	features := make([][]float64, n)
	labels := make([]float64, n)
	for i := range features {
		row := make([]float64, m)
		var dot float64
		for j := range row {
			row[j] = rng.NormFloat64()
			dot += row[j] * truth[j]
		}
		features[i] = row
		labels[i] = dot + 0.05*rng.NormFloat64()
	}
	sr, err := cl.CreateSession(ctx, service.CreateSessionRequest{
		Family: "linear", Features: features, Labels: labels,
		Eta: 0.01, Lambda: 0.05, BatchSize: 32, Iterations: 60, Seed: 1,
	})
	if err != nil {
		log.Fatalf("creating session: %v", err)
	}
	fmt.Printf("trained session %s (%d parameters, provenance %.1f KB)\n",
		sr.SessionID, len(sr.Parameters), float64(sr.FootprintBytes)/1024)

	// Stream three deletion batches on one connection. StreamVerifyDigests
	// asks for the updated parameters each batch and checks them against the
	// server's FNV-1a digest; SendWait sleeps out rate_limited rejections.
	st, err := cl.StreamDeletions(ctx, sr.SessionID, client.StreamVerifyDigests())
	if err != nil {
		log.Fatalf("opening deletions stream: %v", err)
	}
	var lastDigest string
	for _, batch := range [][]int{{1, 2, 3}, {10, 11}, {42}} {
		res, err := st.SendWait(batch)
		if err != nil {
			log.Fatalf("streaming deletions: %v", err)
		}
		fmt.Printf("  batch %d: %d removed (total %d), digest %s verified\n",
			res.Batch, res.Removed, res.TotalDeleted, res.Digest)
		lastDigest = res.Digest
	}
	if err := st.Close(); err != nil {
		log.Fatalf("closing stream: %v", err)
	}

	// Snapshot round trip: the restored session replays the deletion log, so
	// its parameters hash to the same digest as the last streamed update.
	var snap bytes.Buffer
	if _, err := cl.SnapshotTo(ctx, sr.SessionID, &snap); err != nil {
		log.Fatalf("exporting snapshot: %v", err)
	}
	restored, err := cl.RestoreSnapshot(ctx, &snap)
	if err != nil {
		log.Fatalf("restoring snapshot: %v", err)
	}
	if got := service.ParamDigest(restored.Parameters); got != lastDigest {
		log.Fatalf("restored digest %s != streamed digest %s", got, lastDigest)
	}
	fmt.Printf("snapshot restored as %s with matching digest (%d deletions honored)\n",
		restored.SessionID, restored.TotalDeleted)

	sessions, err := cl.ListSessions(ctx)
	if err != nil {
		log.Fatalf("listing sessions: %v", err)
	}
	fmt.Printf("tenant sees %d session(s)\n", len(sessions))

	for _, id := range []string{sr.SessionID, restored.SessionID} {
		if err := cl.DeleteSession(ctx, id); err != nil {
			log.Fatalf("deleting %s: %v", id, err)
		}
	}

	ts, err := cl.TenantStats(ctx)
	if err != nil {
		log.Fatalf("tenant stats: %v", err)
	}
	fmt.Printf("tenant %q (authenticated=%v): %d trains, %d rows deleted, %d rate-limited\n",
		ts.Tenant, ts.Authenticated, ts.Trains, ts.RowsDeleted, ts.RateLimited)
}
